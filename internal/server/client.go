package server

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Client is a minimal papid client: synchronous request/response over
// one connection, with asynchronous SNAPSHOT frames routed to an
// optional callback. It is what cmd/papirun's -serve flag, the stress
// tests and the throughput benchmark all speak through.
//
// A Client is not safe for concurrent Do calls; dedicate one Client
// per goroutine (subscription streams typically use a Client of their
// own and block in Next).
type Client struct {
	nc  net.Conn
	enc *wire.Encoder
	dec *wire.Decoder

	// Timeout bounds each Do round-trip (encode + reply). 0 waits
	// forever — the pre-hardening behavior, where a dead server hangs
	// the caller instead of producing the documented one-line error.
	Timeout time.Duration

	// PreferBinary asks the server for the compact binary codec during
	// Hello. The handshake itself is always JSON; if the server's reply
	// confirms the upgrade both directions switch for every subsequent
	// frame, and if it doesn't (a v2 server) the connection transparently
	// stays on JSON lines. Set it before Hello.
	PreferBinary bool

	// OnSnapshot, when set, receives SNAPSHOT frames that arrive while
	// Do is waiting for a request's reply.
	OnSnapshot func(wire.Response)
	// OnDerived receives asynchronous DERIVED frames the same way —
	// pushed to v3+ subscribers whose session evaluates performance
	// groups. Unset, such frames are silently skipped by Do.
	OnDerived func(wire.Response)
	// OnDelta receives asynchronous DELTA frames (v4 delta-mode
	// subscriptions). Unset, such frames are silently skipped by Do —
	// they must never be mistaken for a request's reply.
	OnDelta func(wire.Response)

	mu       sync.Mutex
	closed   bool
	firstErr error // first transport failure, re-surfaced by Close
}

// Dial connects to a papid instance.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{nc: nc, enc: wire.NewEncoder(nc), dec: wire.NewDecoder(nc)}, nil
}

// Hello performs the version handshake: it announces this client's
// protocol version (and codec preference, see PreferBinary) and
// returns the server's reply, whose Protocol field callers compare
// against op-specific minimums (e.g. wire.MinProtocolQuery) to detect
// older servers before issuing ops they would reject.
func (c *Client) Hello() (wire.Response, error) {
	req := wire.Request{Op: wire.OpHello, Version: wire.ProtocolVersion}
	if c.PreferBinary {
		req.Codec = wire.CodecNameBinary
	}
	resp, err := c.Do(req)
	if err == nil && req.Codec == wire.CodecNameBinary && resp.Codec == wire.CodecNameBinary {
		// The server confirmed the upgrade and switches right after its
		// (JSON) reply; mirror it on both halves of this connection.
		c.enc.SetCodec(wire.CodecBinary)
		c.dec.SetCodec(wire.CodecBinary)
	}
	return resp, err
}

// Codec reports the connection's negotiated frame codec.
func (c *Client) Codec() wire.Codec { return c.dec.Codec() }

// Do sends one request and waits for its reply, routing any interleaved
// snapshots to OnSnapshot. A server-side error becomes a Go error; a
// connection-level failure (including a Timeout trip) becomes a
// *TransportError.
func (c *Client) Do(req wire.Request) (wire.Response, error) {
	if c.Timeout > 0 {
		c.nc.SetDeadline(time.Now().Add(c.Timeout))
		defer c.nc.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(&req); err != nil {
		return wire.Response{}, c.transportErr(req.Op, err)
	}
	for {
		var resp wire.Response
		if err := c.dec.Decode(&resp); err != nil {
			return wire.Response{}, c.transportErr(req.Op, err)
		}
		if resp.Op == wire.OpSnapshot {
			if c.OnSnapshot != nil {
				c.OnSnapshot(resp)
			}
			continue
		}
		if resp.Op == wire.OpDerived {
			if c.OnDerived != nil {
				c.OnDerived(resp)
			}
			continue
		}
		if resp.Op == wire.OpDelta {
			if c.OnDelta != nil {
				c.OnDelta(resp)
			}
			continue
		}
		if !resp.OK {
			return resp, fmt.Errorf("papid: %s: %s", req.Op, resp.Error)
		}
		return resp, nil
	}
}

// Next returns the next frame of any kind — the read loop for
// subscription streams.
func (c *Client) Next() (wire.Response, error) {
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		return resp, c.transportErr("", err)
	}
	return resp, nil
}

// transportErr wraps and records a connection-level failure. The
// first one (clean EOF excepted) is sticky and re-surfaced by Close,
// so a deferred Close does not silently swallow an in-flight encoder
// error.
func (c *Client) transportErr(op string, err error) error {
	terr := &TransportError{Op: op, Err: err}
	c.mu.Lock()
	if c.firstErr == nil && !wire.IsEOF(err) {
		c.firstErr = terr
	}
	c.mu.Unlock()
	return terr
}

// Close closes the connection. It is idempotent — the first call
// closes and reports, every later call returns nil — and it
// propagates the first in-flight transport error when the close
// itself succeeds, so `defer cl.Close()` call sites that do check the
// error see what actually went wrong on the wire.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if err := c.nc.Close(); err != nil {
		return err
	}
	return c.firstErr
}

// TransportError marks a connection-level failure — dial loss, write
// failure, deadline trip — as opposed to a server-side error reply.
// It is what the reconnecting client keys redials off.
type TransportError struct {
	Op  string // the request op in flight, if any
	Err error
}

func (e *TransportError) Error() string {
	if e.Op == "" {
		return fmt.Sprintf("papid: %v", e.Err)
	}
	return fmt.Sprintf("papid: %s: %v", e.Op, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Timeout reports whether the failure was a request-deadline trip.
func (e *TransportError) Timeout() bool { return wire.IsTimeout(e.Err) }

// IsTransport reports whether err is a connection-level failure
// rather than a server-side error reply.
func IsTransport(err error) bool {
	var t *TransportError
	return errors.As(err, &t)
}

// RetryConfig parameterizes DialRetry and the reconnecting client.
// The zero value selects the defaults noted per field.
type RetryConfig struct {
	// Attempts bounds dial attempts per connect (default 4).
	Attempts int
	// BaseDelay seeds the exponential backoff (default 25ms): the
	// n-th retry waits min(BaseDelay<<n, MaxDelay), scaled by a
	// uniform jitter in [0.5, 1.5) so a thundering herd of clients
	// does not re-dial in lockstep.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// Timeout is installed as the dialed Client's per-request
	// deadline (default 0 = none).
	Timeout time.Duration
	// PreferBinary is installed on the dialed Client, so reconnecting
	// clients re-negotiate the binary codec on every redial.
	PreferBinary bool

	// jitter returns the backoff scale factor; tests pin it.
	jitter func() float64
}

func (rc *RetryConfig) fill() {
	if rc.Attempts <= 0 {
		rc.Attempts = 4
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = 25 * time.Millisecond
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = time.Second
	}
	if rc.jitter == nil {
		rc.jitter = func() float64 { return 0.5 + rand.Float64() }
	}
}

// backoff returns the jittered wait before retry number n (0-based):
// BaseDelay doubling per retry, capped at MaxDelay. Doubling in a
// loop rather than shifting keeps any retry count overflow-safe.
func (rc *RetryConfig) backoff(n int) time.Duration {
	d := rc.BaseDelay
	for i := 0; i < n && d < rc.MaxDelay; i++ {
		d *= 2
	}
	if d > rc.MaxDelay {
		d = rc.MaxDelay
	}
	return time.Duration(float64(d) * rc.jitter())
}

// DialRetry connects like Dial but retries refused or unreachable
// dials with exponential backoff plus jitter, and installs
// rc.Timeout on the resulting Client.
func DialRetry(addr string, rc RetryConfig) (*Client, error) {
	rc.fill()
	var err error
	for i := 0; i < rc.Attempts; i++ {
		if i > 0 {
			time.Sleep(rc.backoff(i - 1))
		}
		var cl *Client
		if cl, err = Dial(addr); err == nil {
			cl.Timeout = rc.Timeout
			cl.PreferBinary = rc.PreferBinary
			return cl, nil
		}
	}
	return nil, fmt.Errorf("papid at %s unreachable after %d attempts: %w", addr, rc.Attempts, err)
}

// replayableOps are safe to reissue on a fresh connection after a
// transport failure: they are idempotent (HELLO, READ, QUERY, STATS,
// BYE) or overwrite-last semantics makes a duplicate harmless
// (PUBLISH). Ops that mutate connection- or ordering-coupled state
// (CREATE_SESSION, START, SUBSCRIBE, ...) are not replayed: a retry
// could double-create or double-start, so their failure surfaces.
var replayableOps = map[string]bool{
	wire.OpHello:   true,
	wire.OpPublish: true,
	wire.OpRead:    true,
	wire.OpQuery:   true,
	wire.OpStats:   true,
	wire.OpBye:     true,
}

// ReconnClient is a Client that survives connection loss: a transport
// failure triggers a redial with exponential backoff + jitter, an
// automatic HELLO replay to re-handshake, and — for idempotent ops —
// one replay of the failed request. Like Client, it is not safe for
// concurrent Do calls.
type ReconnClient struct {
	addr string
	rc   RetryConfig

	cl    *Client
	hello wire.Response

	// subs are the subscriptions Subscribe/SubscribeWith recorded,
	// replayed verbatim (filters, delta mode and derive groups included)
	// on every reconnect.
	subs []SubOptions

	// Reconnects counts successful redials.
	Reconnects int
	// OnSnapshot receives interleaved SNAPSHOT frames; it survives
	// reconnects (unlike a callback set on a raw Client).
	OnSnapshot func(wire.Response)
	// OnDerived receives interleaved DERIVED frames; like OnSnapshot it
	// survives reconnects.
	OnDerived func(wire.Response)
	// OnDelta receives interleaved DELTA frames; like OnSnapshot it
	// survives reconnects.
	OnDelta func(wire.Response)
}

// SubOptions parameterizes a SUBSCRIBE: the classic single-session
// form (Session, optionally with Derive groups) or the v4 wildcard
// form (Sessions and/or Labels with Session left 0), either one
// optionally narrowed to Events and switched to Delta mode. The v4
// fields need a v4 server — compare Hello().Protocol against
// wire.MinProtocolFilter before using them.
type SubOptions struct {
	Session  uint64   // single-session form: the session to follow
	Sessions []uint64 // wildcard form: explicit session IDs
	Labels   []string // wildcard form: label globs (path.Match syntax)
	Events   []string // limit frames to these event names (nil = all)
	Delta    bool     // delta mode: keyframes + changed-counter frames
	Derive   []string // performance groups (single-session form only)
}

func (o SubOptions) req() wire.Request {
	return wire.Request{Op: wire.OpSubscribe, Session: o.Session,
		Sessions: o.Sessions, Labels: o.Labels, Events: o.Events,
		Delta: o.Delta, Derive: o.Derive}
}

// DialReconn dials addr (with retry) and performs the HELLO
// handshake, returning a client that redials and re-handshakes
// transparently on connection loss.
func DialReconn(addr string, rc RetryConfig) (*ReconnClient, error) {
	rc.fill()
	r := &ReconnClient{addr: addr, rc: rc}
	if err := r.connect(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *ReconnClient) connect() error {
	cl, err := DialRetry(r.addr, r.rc)
	if err != nil {
		return err
	}
	cl.OnSnapshot = func(resp wire.Response) {
		if r.OnSnapshot != nil {
			r.OnSnapshot(resp)
		}
	}
	cl.OnDerived = func(resp wire.Response) {
		if r.OnDerived != nil {
			r.OnDerived(resp)
		}
	}
	cl.OnDelta = func(resp wire.Response) {
		if r.OnDelta != nil {
			r.OnDelta(resp)
		}
	}
	hello, err := cl.Hello()
	if err != nil {
		cl.Close()
		return err
	}
	// Replay recorded subscriptions so the snapshot (and DERIVED)
	// stream resumes on the fresh connection without caller help. A
	// replayed delta subscription registers a fresh server-side
	// subscriber, whose first frame is always a keyframe — the redial
	// re-anchors the delta stream by construction.
	for _, o := range r.subs {
		if _, err := cl.Do(o.req()); err != nil {
			cl.Close()
			return err
		}
	}
	r.cl, r.hello = cl, hello
	return nil
}

// Subscribe issues a single-session SUBSCRIBE (with optional derive
// groups) and records it on success: every later reconnect replays the
// subscription, so a stream consumer keeps receiving frames across
// connection loss.
func (r *ReconnClient) Subscribe(session uint64, groups ...string) (wire.Response, error) {
	return r.SubscribeWith(SubOptions{Session: session,
		Derive: append([]string(nil), groups...)})
}

// SubscribeWith issues a SUBSCRIBE in any form SubOptions can express
// — wildcard, event-filtered, delta — and records it on success for
// replay across reconnects. The raw SUBSCRIBE op is not blindly
// replayable (see replayableOps); a deliberately recorded subscription
// is: re-subscribing just adds a fresh subscriber on the new
// connection, and a fresh delta subscriber's first frame is a
// keyframe, re-anchoring the stream.
func (r *ReconnClient) SubscribeWith(o SubOptions) (wire.Response, error) {
	resp, err := r.Do(o.req())
	if err == nil {
		r.subs = append(r.subs, o)
	}
	return resp, err
}

// Hello returns the most recent handshake reply — refreshed on every
// reconnect, so Protocol always describes the server actually on the
// other end.
func (r *ReconnClient) Hello() wire.Response { return r.hello }

// Do issues the request, redialing once on a transport failure. After
// a successful reconnect (which replays HELLO), a replayable request
// is reissued; a non-replayable one returns the original failure with
// the reconnect noted, leaving the retry decision to the caller.
func (r *ReconnClient) Do(req wire.Request) (wire.Response, error) {
	resp, err := r.cl.Do(req)
	if err == nil || !IsTransport(err) {
		return resp, err
	}
	r.cl.Close()
	if cerr := r.connect(); cerr != nil {
		return wire.Response{}, fmt.Errorf("%w (reconnect failed: %v)", err, cerr)
	}
	r.Reconnects++
	if !replayableOps[req.Op] {
		return wire.Response{}, fmt.Errorf("%w (reconnected, but %s is not replayable)", err, req.Op)
	}
	return r.cl.Do(req)
}

// Close closes the underlying connection; idempotent like
// Client.Close.
func (r *ReconnClient) Close() error {
	if r.cl == nil {
		return nil
	}
	return r.cl.Close()
}
