package server

import (
	"fmt"
	"net"

	"repro/internal/wire"
)

// Client is a minimal papid client: synchronous request/response over
// one connection, with asynchronous SNAPSHOT frames routed to an
// optional callback. It is what cmd/papirun's -serve flag, the stress
// tests and the throughput benchmark all speak through.
//
// A Client is not safe for concurrent Do calls; dedicate one Client
// per goroutine (subscription streams typically use a Client of their
// own and block in Next).
type Client struct {
	nc  net.Conn
	enc *wire.Encoder
	dec *wire.Decoder

	// OnSnapshot, when set, receives SNAPSHOT frames that arrive while
	// Do is waiting for a request's reply.
	OnSnapshot func(wire.Response)
}

// Dial connects to a papid instance.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{nc: nc, enc: wire.NewEncoder(nc), dec: wire.NewDecoder(nc)}, nil
}

// Hello performs the version handshake: it announces this client's
// protocol version and returns the server's reply, whose Protocol
// field callers compare against op-specific minimums (e.g.
// wire.MinProtocolQuery) to detect older servers before issuing ops
// they would reject.
func (c *Client) Hello() (wire.Response, error) {
	return c.Do(wire.Request{Op: wire.OpHello, Version: wire.ProtocolVersion})
}

// Do sends one request and waits for its reply, routing any interleaved
// snapshots to OnSnapshot. A server-side error becomes a Go error.
func (c *Client) Do(req wire.Request) (wire.Response, error) {
	if err := c.enc.Encode(&req); err != nil {
		return wire.Response{}, err
	}
	for {
		var resp wire.Response
		if err := c.dec.Decode(&resp); err != nil {
			return wire.Response{}, err
		}
		if resp.Op == wire.OpSnapshot {
			if c.OnSnapshot != nil {
				c.OnSnapshot(resp)
			}
			continue
		}
		if !resp.OK {
			return resp, fmt.Errorf("papid: %s: %s", req.Op, resp.Error)
		}
		return resp, nil
	}
}

// Next returns the next frame of any kind — the read loop for
// subscription streams.
func (c *Client) Next() (wire.Response, error) {
	var resp wire.Response
	err := c.dec.Decode(&resp)
	return resp, err
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }
