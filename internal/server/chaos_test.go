package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/wire"
)

// TestChaosSurvivesPathologicalPeers is the connection-lifecycle
// acceptance test: 32 concurrent clients, most of them hostile —
// subscribers that stop reading, peers that go silent, writers that
// reset mid-frame — against short deadlines and small buffers. The
// server must keep serving a healthy client's QUERY within its
// request deadline, evict every stalled peer, report the carnage in
// STATS, and leak no goroutines. Run under -race (tools/ci.sh) with a
// short -timeout, so a reintroduced hang fails CI instead of
// stalling it.
func TestChaosSurvivesPathologicalPeers(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	srv := New(Config{
		TickInterval: 2 * time.Millisecond,
		// Chaos runs with the parallel sweep at full width regardless of
		// GOMAXPROCS: every fan-out invariant must hold with concurrent
		// shard workers, and -race checks they do.
		TickWorkers:     8,
		ReadIdleTimeout: 400 * time.Millisecond,
		WriteTimeout:    250 * time.Millisecond,
		WriteQueueDepth: 8,
		QueueDepth:      4,
		// Derived evaluation joins the storm: the ipc group runs on every
		// covered session each tick, and the (always-true, strict)
		// threshold rule must fire and be scrapable mid-chaos.
		Groups:      []string{"ipc"},
		DeriveRules: []string{"ipc>0:2"},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Tiny server-side send buffers so a subscriber that stops reading
	// back-pressures in milliseconds instead of after megabytes.
	fln := faultnet.Wrap(ln, func(i int, nc net.Conn) faultnet.Faults {
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetWriteBuffer(4 << 10)
		}
		return faultnet.Faults{}
	})
	addr := srv.Serve(fln).String()

	// The admin HTTP server joins the chaos: scraped while peers are
	// being evicted, and covered by the goroutine-leak check below —
	// its serve loop must not outlive the drain. Keep-alives are off so
	// no idle HTTP connection is mistaken for a leak.
	adminAddr, err := srv.ListenAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{Timeout: 5 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true}}
	scrape := func() string {
		resp, err := hc.Get("http://" + adminAddr.String() + "/metrics")
		if err != nil {
			t.Fatalf("scrape during chaos: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("scrape body: %v", err)
		}
		return string(body)
	}

	// The healthy client: every request bounded by a deadline; its
	// session is the one the stalled subscribers will clog.
	healthy, err := DialRetry(addr, RetryConfig{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	created, err := healthy.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"}, Workload: "dot", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session
	if _, err := healthy.Do(wire.Request{Op: wire.OpStart, Session: id}); err != nil {
		t.Fatal(err)
	}

	const (
		nStalled = 10 // subscribe, then never read again
		nIdle    = 11 // HELLO, then total silence
		nReset   = 10 // garbage, then a frame cut in the middle
	)
	var mu sync.Mutex
	var open []interface{ Close() error }
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range open {
			c.Close()
		}
	}()
	track := func(c interface{ Close() error }) {
		mu.Lock()
		open = append(open, c)
		mu.Unlock()
	}

	var setup sync.WaitGroup
	errc := make(chan error, nStalled+nIdle+nReset)
	for i := 0; i < nStalled; i++ {
		setup.Add(1)
		go func() {
			defer setup.Done()
			errc <- func() error {
				cl, err := Dial(addr)
				if err != nil {
					return err
				}
				track(cl)
				if tc, ok := cl.nc.(*net.TCPConn); ok {
					tc.SetReadBuffer(1 << 10)
				}
				cl.Timeout = 10 * time.Second
				if _, err := cl.Hello(); err != nil {
					return err
				}
				if _, err := cl.Do(wire.Request{Op: wire.OpSubscribe, Session: id}); err != nil {
					return err
				}
				return nil // and never read another byte
			}()
		}()
	}
	for i := 0; i < nIdle; i++ {
		setup.Add(1)
		go func() {
			defer setup.Done()
			errc <- func() error {
				cl, err := Dial(addr)
				if err != nil {
					return err
				}
				track(cl)
				cl.Timeout = 10 * time.Second
				_, err = cl.Hello()
				return err // then silence: no requests, no subscription
			}()
		}()
	}
	for i := 0; i < nReset; i++ {
		setup.Add(1)
		go func() {
			defer setup.Done()
			errc <- func() error {
				nc, err := net.Dial("tcp", addr)
				if err != nil {
					return err
				}
				fc := faultnet.WrapConn(nc, faultnet.Faults{CutAfter: 48})
				track(fc)
				// A whole garbage line, then a valid frame the cut
				// truncates mid-JSON: the server must answer ERROR,
				// resync, and carry on.
				fc.Write([]byte("definitely not json\n"))
				frame := fmt.Sprintf(`{"op":"PUBLISH","session":%d,"values":[1,2,3,4,5,6,7,8]}%s`, id, "\n")
				fc.Write([]byte(frame)) // severed by CutAfter
				return nil
			}()
		}()
	}
	setup.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatalf("chaos client setup: %v", err)
		}
	}

	// The server must evict all 21 wedged peers (the resetters
	// disconnect themselves) while the healthy client keeps getting
	// answers within its deadline.
	wantEvictions := uint64(nStalled + nIdle)
	deadline := time.Now().Add(20 * time.Second)
	var st map[string]uint64
	for {
		resp, err := healthy.Do(wire.Request{Op: wire.OpStats})
		if err != nil {
			t.Fatalf("STATS during chaos: %v", err)
		}
		st = resp.Stats
		if _, err := healthy.Do(wire.Request{Op: wire.OpQuery, Session: id,
			From: 0, To: 1 << 62, Step: 10_000_000}); err != nil {
			t.Fatalf("QUERY during chaos missed its deadline: %v", err)
		}
		// /metrics must answer mid-storm, and agree that evictions
		// and derived-metric alerts are being counted.
		if m := scrape(); !strings.Contains(m, "papid_evictions_total") {
			t.Fatalf("mid-chaos scrape lacks eviction counter:\n%.500s", m)
		} else if st["derive_alerts"] >= 1 &&
			(!strings.Contains(m, "papid_derive_alerts_total") ||
				strings.Contains(m, "papid_derive_alerts_total 0\n")) {
			t.Fatalf("mid-chaos scrape disagrees with %d fired derive alerts:\n%.500s",
				st["derive_alerts"], m)
		}
		if st["evictions"] >= wantEvictions && st["resyncs"] >= nReset &&
			st["derive_evals"] > 0 && st["derive_alerts"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaos never converged: stats %v, want >= %d evictions and >= %d resyncs",
				st, wantEvictions, nReset)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if st["deadline_trips"] < nIdle {
		t.Errorf("deadline_trips = %d, want >= %d (idle peers trip the read deadline)",
			st["deadline_trips"], nIdle)
	}
	if st["write_drops"] == 0 {
		t.Error("write_drops = 0: stalled subscribers never hit the socket-level drop policy")
	}

	// The healthy session is still fully usable after the storm.
	if _, err := healthy.Do(wire.Request{Op: wire.OpStop, Session: id}); err != nil {
		t.Fatal(err)
	}
	if _, err := healthy.Do(wire.Request{Op: wire.OpCloseSession, Session: id}); err != nil {
		t.Fatal(err)
	}
	if _, err := healthy.Do(wire.Request{Op: wire.OpBye}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after chaos: %v", err)
	}
	// The drain must have taken the admin listener down with it.
	if _, err := net.DialTimeout("tcp", adminAddr.String(), time.Second); err == nil {
		t.Error("admin listener still accepting after Shutdown")
	}
	hc.CloseIdleConnections()

	// No goroutine may outlive the drain: reader, writer, subscriber
	// loops of evicted connections, and the admin HTTP server included.
	var n int
	for end := time.Now().Add(5 * time.Second); ; {
		if n = runtime.NumGoroutine(); n <= baseGoroutines+3 {
			break
		}
		if time.Now().After(end) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after chaos: %d at start, %d after shutdown\n%s",
				baseGoroutines, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
