// Filtered and delta subscriptions (protocol v4): instead of every
// subscriber receiving every session's full snapshot every tick, a
// subscriber may narrow its stream to selected sessions (by ID list or
// label glob), selected counters (by event name), and delta mode —
// only the counters that changed since its last keyframe.
//
// The fan-out stays encode-once: subscribers are partitioned by filter
// signature (filterSig), each distinct view is projected and encoded
// at most once per codec per tick, and the shared immutable []byte
// flows through every subscriber of that view exactly like the
// unfiltered path.
//
// Delta frames chain from keyframes, not from each other: a DELTA
// carries every counter whose value differs from the view's last
// keyframe (wire.Response.Base names it by Seq), with absolute values.
// Each delta therefore fully supersedes the previous one, and a
// dropped delta can never corrupt client state. The only frame whose
// loss matters is a keyframe — any drop on a delta subscriber marks it
// needKey, and the next fan-out re-keys the whole view (an extra
// keyframe for its in-sync peers, full resync for the lagging one).
// A periodic cadence (Config.KeyframeEvery) bounds both delta growth
// within an epoch and the time any desynced client waits.
package server

import (
	"path"
	"slices"
	"strings"

	"repro/internal/telemetry/tracing"
	"repro/internal/wire"
)

// filterSig canonicalizes a subscriber's (event filter, delta) pair
// into the signature fanout partitions by: subscribers with the same
// signature share one viewState and one encoded frame per codec. The
// empty signature is the unfiltered, non-delta fast path. canon is the
// sorted, deduplicated filter the view matches against (nil = every
// event).
func filterSig(events []string, delta bool) (sig string, canon []string) {
	if len(events) == 0 && !delta {
		return "", nil
	}
	if len(events) > 0 {
		canon = slices.Clone(events)
		slices.Sort(canon)
		canon = slices.Compact(canon)
	}
	var b strings.Builder
	if delta {
		b.WriteString("d|")
	} else {
		b.WriteString("f|")
	}
	for i, ev := range canon {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ev)
	}
	return b.String(), canon
}

// viewState is one distinct filtered view of one session: the
// projection of the session's event list through the filter, and — for
// delta views — the keyframe epoch the next delta chains from. Guarded
// by the session's fanMu.
type viewState struct {
	filter []string // canonical event filter; nil selects every event
	delta  bool

	srcNames []string // session event list the projection was built from
	idx      []int    // position of each view event in the session's Values
	events   []string // projected event names, session order

	primed   bool    // a keyframe has been produced
	keySeq   uint64  // Seq of the current epoch's keyframe
	keyVals  []int64 // projected values at that keyframe
	sinceKey int     // fan-outs since the last keyframe

	// Per-tick scratch, reused across fan-outs (frames are serialized
	// before the fan-out returns, so nothing escapes).
	cur     []int64
	changed []uint32
	cvals   []int64
}

// project refreshes the view's projection of the session snapshot and
// fills vs.cur with the projected values. It reports whether the
// session's event list changed since the last fan-out — the projection
// (and so every delta index) is relative to the event order, so a
// change forces a fresh keyframe.
func (vs *viewState) project(snap *wire.Response) (rekeyed bool) {
	if !slices.Equal(vs.srcNames, snap.Events) {
		vs.srcNames = slices.Clone(snap.Events)
		vs.idx = vs.idx[:0]
		vs.events = vs.events[:0]
		for i, name := range snap.Events {
			if vs.filter != nil && !slices.Contains(vs.filter, name) {
				continue
			}
			vs.idx = append(vs.idx, i)
			vs.events = append(vs.events, name)
		}
		rekeyed = vs.primed
	}
	vs.cur = vs.cur[:0]
	for _, i := range vs.idx {
		vs.cur = append(vs.cur, snap.Values[i])
	}
	return rekeyed
}

// view returns (creating if needed) the session's viewState for the
// subscriber's filter signature. Callers hold sess.fanMu.
func (sess *session) view(sub *subscriber) *viewState {
	vs := sess.views[sub.sig]
	if vs == nil {
		if sess.views == nil {
			sess.views = make(map[string]*viewState)
		}
		vs = &viewState{filter: sub.events, delta: sub.delta}
		sess.views[sub.sig] = vs
	}
	return vs
}

// matches reports whether a wildcard SUBSCRIBE's filters select this
// session: its ID is listed, or its label matches any glob. id and
// label are immutable after createSession, so no lock is needed.
func (sess *session) matches(ids []uint64, globs []string) bool {
	if slices.Contains(ids, sess.id) {
		return true
	}
	for _, g := range globs {
		if ok, _ := path.Match(g, sess.label); ok {
			return true
		}
	}
	return false
}

// fanoutViews delivers one tick to the filtered/delta subscribers,
// grouped by filter signature so each distinct view is projected and
// encoded at most once per codec. sess.fanMu serializes concurrent
// fan-outs of the same session (the tick loop and PUBLISH handlers),
// keeping per-view baselines consistent.
// t/parent thread the enclosing trace so detailed traces record the
// per-view encode spans; both may be nil/zero.
func (s *Server) fanoutViews(t *tracing.Trace, parent tracing.SpanRef, sess *session, snap *wire.Response, subs []*subscriber) {
	sess.fanMu.Lock()
	defer sess.fanMu.Unlock()
	type group struct {
		vs      *viewState
		subs    []*subscriber
		needKey bool
	}
	groups := make(map[string]*group, 1)
	order := make([]*group, 0, 1)
	for _, sub := range subs {
		g := groups[sub.sig]
		if g == nil {
			g = &group{vs: sess.view(sub)}
			groups[sub.sig] = g
			order = append(order, g)
		}
		g.subs = append(g.subs, sub)
		if sub.delta && sub.needKey.Load() {
			g.needKey = true
		}
	}
	for _, g := range order {
		s.fanoutView(t, parent, g.vs, g.subs, g.needKey, snap)
	}
}

// fanoutView delivers one tick to the subscribers of one view: a
// projected full snapshot for filtered non-delta views; for delta
// views a keyframe when the epoch must (re)start — first frame,
// projection change, resync request, cadence — and otherwise a DELTA
// of everything that drifted from the keyframe. An empty delta sends
// nothing at all.
func (s *Server) fanoutView(t *tracing.Trace, parent tracing.SpanRef, vs *viewState, subs []*subscriber, needKey bool, snap *wire.Response) {
	rekeyed := vs.project(snap)
	if len(vs.events) == 0 {
		return // the filter matches none of this session's events
	}
	detailed := t.Detailed()
	if !vs.delta {
		resp := wire.Response{Op: wire.OpSnapshot, OK: true, Session: snap.Session,
			Events: vs.events, Values: vs.cur, RealUsec: snap.RealUsec,
			Seq: snap.Seq, Source: snap.Source}
		enc := encCache{resp: &resp}
		if detailed {
			enc.trc, enc.parent = t, parent
		}
		for _, sub := range subs {
			s.pushSnapshot(&enc, sub)
		}
		enc.done()
		return
	}
	vs.sinceKey++
	if !vs.primed || rekeyed || needKey || vs.sinceKey >= s.cfg.KeyframeEvery {
		vs.primed = true
		vs.keySeq = snap.Seq
		vs.keyVals = append(vs.keyVals[:0], vs.cur...)
		vs.sinceKey = 0
		resp := wire.Response{Op: wire.OpSnapshot, OK: true, Session: snap.Session,
			Events: vs.events, Values: vs.cur, RealUsec: snap.RealUsec,
			Seq: snap.Seq, Source: snap.Source}
		enc := encCache{resp: &resp}
		if detailed {
			enc.trc, enc.parent = t, parent
		}
		for _, sub := range subs {
			s.pushKeyframe(&enc, sub)
		}
		enc.done()
		return
	}
	vs.changed = vs.changed[:0]
	vs.cvals = vs.cvals[:0]
	for i, v := range vs.cur {
		if v != vs.keyVals[i] {
			vs.changed = append(vs.changed, uint32(i))
			vs.cvals = append(vs.cvals, v)
		}
	}
	if len(vs.changed) == 0 {
		return
	}
	resp := wire.Response{Op: wire.OpDelta, OK: true, Session: snap.Session,
		Seq: snap.Seq, Base: vs.keySeq, Idx: vs.changed, Values: vs.cvals}
	enc := encCache{resp: &resp}
	if detailed {
		enc.trc, enc.parent = t, parent
	}
	for _, sub := range subs {
		codec := sub.c.codecNow()
		sb, ok := enc.get(s, "delta", codec)
		if !ok {
			s.m.deltaDropped.Inc()
			sub.needKey.Store(true)
			continue
		}
		s.m.deltaSent.Inc()
		sb.ref()
		if sub.push(frame{payload: sb.buf, codec: codec, droppable: true, shared: sb}) {
			s.m.deltaDropped.Inc()
			sub.needKey.Store(true)
		}
	}
	enc.done()
}

// pushKeyframe enqueues one keyframe snapshot to a delta subscriber.
// Any failure to deliver — encode failure or a drop from the full
// queue — leaves needKey set so the next fan-out re-keys; only a clean
// enqueue clears it.
func (s *Server) pushKeyframe(enc *encCache, sub *subscriber) {
	codec := sub.c.codecNow()
	sb, ok := enc.get(s, "keyframe", codec)
	if !ok {
		s.m.snapDropped.Inc()
		sub.needKey.Store(true)
		return
	}
	s.m.snapSent.Inc()
	s.m.keyframes.Inc()
	sb.ref()
	if sub.push(frame{payload: sb.buf, codec: codec, droppable: true, shared: sb}) {
		s.m.snapDropped.Inc()
		sub.needKey.Store(true)
	} else {
		sub.needKey.Store(false)
	}
}
