package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// durableQueries snapshots every QUERY view of a session the server
// serves — raw plus each rollup step — for exact comparison across a
// restart.
func durableQueries(t *testing.T, srv *Server, session uint64, from, to int64) string {
	t.Helper()
	var sb strings.Builder
	for _, step := range []int64{0, 10_000_000, 60_000_000} {
		resp := srv.dispatch(nil, &wire.Request{Op: wire.OpQuery, Session: session,
			From: from, To: to, Step: step})
		if !resp.OK {
			t.Fatalf("QUERY step=%d: %s", step, resp.Error)
		}
		b, err := json.Marshal(resp.Series)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "step=%d %s\n", step, b)
	}
	return sb.String()
}

// durablePublish drives n ticks through dispatch against an injected
// clock, the same path the tick loop and PUBLISH take in production.
func durablePublish(t *testing.T, srv *Server, session uint64, clock *int64, n int) {
	t.Helper()
	events := []string{"PAPI_TOT_CYC", "PAPI_FP_OPS"}
	for i := 0; i < n; i++ {
		*clock += 10_000
		resp := srv.dispatch(nil, &wire.Request{Op: wire.OpPublish, Session: session,
			Events: events, Values: []int64{int64(i) * 3, int64(i) * 7}})
		if !resp.OK {
			t.Fatalf("publish %d: %s", i, resp.Error)
		}
	}
}

// TestDurableRestartCleanShutdown: a server with -data-dir set survives
// a graceful shutdown with byte-identical QUERY answers, and the
// restart takes the clean fast path (replays nothing).
func TestDurableRestartCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	clock := int64(1_000_000)
	cfg := Config{
		TickInterval:  time.Hour,
		TSDBRetention: -1,
		DataDir:       dir,
		Fsync:         "off",
		now:           func() int64 { return clock },
	}

	srv := New(cfg)
	if srv.walErr != nil {
		t.Fatalf("wal open: %v", srv.walErr)
	}
	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate, Workload: "none", Label: "durable"})
	if !created.OK {
		t.Fatal(created.Error)
	}
	id := created.Session
	durablePublish(t, srv, id, &clock, 3000)

	// STATS gains the wal_* keys only in durable mode.
	stats := srv.dispatch(nil, &wire.Request{Op: wire.OpStats})
	if stats.Stats["wal_rows"] != 3000 {
		t.Errorf("wal_rows = %d, want 3000 (stats %v)", stats.Stats["wal_rows"], stats.Stats)
	}
	if stats.Stats["wal_clean_start"] != 0 {
		t.Errorf("first boot reported wal_clean_start=%d", stats.Stats["wal_clean_start"])
	}

	want := durableQueries(t, srv, id, 0, 1<<60)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	srv2 := New(cfg)
	if srv2.walErr != nil {
		t.Fatalf("wal reopen: %v", srv2.walErr)
	}
	defer srv2.Shutdown(context.Background())
	rs := srv2.Replay()
	if !rs.CleanStart {
		t.Errorf("restart after clean shutdown: CleanStart=false (%+v)", rs)
	}
	if rs.Rows != 0 {
		t.Errorf("clean restart replayed %d rows, want 0", rs.Rows)
	}
	if got := durableQueries(t, srv2, id, 0, 1<<60); got != want {
		t.Errorf("QUERY diverged across clean restart:\nbefore: %s\nafter:  %s", want, got)
	}
}

// TestDurableRestartAfterCrash: an abandoned WAL (the kill -9 shape —
// no seal, no truncate, no marker) replays to byte-identical QUERY
// answers.
func TestDurableRestartAfterCrash(t *testing.T) {
	dir := t.TempDir()
	clock := int64(1_000_000)
	cfg := Config{
		TickInterval:  time.Hour,
		TSDBRetention: -1,
		DataDir:       dir,
		Fsync:         "always",
		now:           func() int64 { return clock },
	}

	srv := New(cfg)
	if srv.walErr != nil {
		t.Fatalf("wal open: %v", srv.walErr)
	}
	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate, Workload: "none", Label: "crashy"})
	if !created.OK {
		t.Fatal(created.Error)
	}
	id := created.Session
	durablePublish(t, srv, id, &clock, 2000)
	want := durableQueries(t, srv, id, 0, 1<<60)
	srv.wal.Abandon() // no goroutines to join: Serve was never called

	srv2 := New(cfg)
	if srv2.walErr != nil {
		t.Fatalf("wal reopen: %v", srv2.walErr)
	}
	defer srv2.Shutdown(context.Background())
	rs := srv2.Replay()
	if rs.CleanStart {
		t.Fatal("crash restart took the clean fast path")
	}
	if rs.Rows == 0 && rs.Blocks == 0 {
		t.Fatalf("nothing recovered: %+v", rs)
	}
	if got := durableQueries(t, srv2, id, 0, 1<<60); got != want {
		t.Errorf("QUERY diverged across crash restart:\nbefore: %s\nafter:  %s", want, got)
	}
	stats := srv2.dispatch(nil, &wire.Request{Op: wire.OpStats})
	if stats.Stats["wal_replayed_rows"] == 0 {
		t.Errorf("wal_replayed_rows missing after crash replay: %v", stats.Stats)
	}
}

// TestDurableOpenFailureRefusesToServe: a data dir that cannot be used
// must fail loudly at Listen, not silently fall back to RAM-only.
func TestDurableOpenFailureRefusesToServe(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{TickInterval: time.Hour, DataDir: file})
	if srv.walErr == nil {
		t.Fatal("New accepted a file as -data-dir")
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("Listen served despite an unusable data dir")
	}
}
