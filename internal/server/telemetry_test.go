package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// adminClient is an HTTP client safe for goroutine-leak-checking
// tests: no keep-alive connections survive the scrape.
func adminClient() *http.Client {
	return &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

// TestAdminEndpoint drives real traffic through papid and scrapes the
// admin listener: /metrics must expose the per-op latency histograms,
// queue-depth gauges, and cache counters in parseable Prometheus text,
// /statusz must be a JSON document carrying the same stats, and the
// whole surface must go away on Shutdown.
func TestAdminEndpoint(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Millisecond})
	aaddr, err := srv.ListenAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + aaddr.String()
	hc := adminClient()
	defer hc.CloseIdleConnections()

	// Traffic: a session with a subscriber, a READ, a STATS.
	cl := dialT(t, addr)
	if _, err := cl.Hello(); err != nil {
		t.Fatal(err)
	}
	created, err := cl.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_CYC"}, Workload: "dot", N: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{wire.OpStart, wire.OpSubscribe, wire.OpRead} {
		if _, err := cl.Do(wire.Request{Op: op, Session: created.Session}); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
	waitFor(t, time.Second, func() bool { return srv.Stats().SnapshotsSent > 0 })

	get := func(path string) string {
		t.Helper()
		resp, err := hc.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE papid_op_latency_seconds histogram",
		`papid_op_latency_seconds_bucket{codec="json",op="READ",le="+Inf"}`,
		"papid_op_latency_seconds_count",
		"# TYPE papid_sessions gauge",
		"papid_sessions 1",
		"papid_write_queue_frames",
		"papid_alloc_cache_hits_total",
		"papid_alloc_cache_misses_total",
		"papid_snapshots_sent_total",
		"papid_tick_duration_seconds_count",
		`papid_frames_sent_total{codec="json"}`,
		"papid_tsdb_append_seconds_count",
		"papid_goroutines",
		"papid_uptime_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
	// Every sample line must parse as "<name>{...} <float>".
	for _, line := range strings.Split(metrics, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		var f float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &f); err != nil {
			t.Fatalf("sample %q value: %v", line, err)
		}
	}

	var status struct {
		Stats Stats                        `json:"stats"`
		Hists map[string]telemetry.Summary `json:"hists"`
	}
	if err := json.Unmarshal([]byte(get("/statusz")), &status); err != nil {
		t.Fatalf("/statusz is not the status document: %v", err)
	}
	if status.Stats.Sessions != 1 || status.Stats.SnapshotsSent == 0 {
		t.Errorf("/statusz stats: %+v", status.Stats)
	}
	if s, ok := status.Hists["op/READ/json"]; !ok || s.Count == 0 || s.P50 <= 0 {
		t.Errorf("/statusz hists lack op/READ/json quantiles: %+v", status.Hists)
	}

	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof/ index not served")
	}

	// Shutdown (the t.Cleanup from startServer) must close the admin
	// listener; verify eagerly so the failure names the right actor.
	cl.Close()
	shutdownServer(t, srv)
	if _, err := net.DialTimeout("tcp", aaddr.String(), time.Second); err == nil {
		t.Error("admin listener still accepting after Shutdown")
	}
}

// shutdownServer drains srv now (idempotent with the cleanup hook).
func shutdownServer(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestStatsHistsMixedVersion pins the wire-compatibility contract for
// the v3 STATS extension: a v3 client sees latency quantiles, while a
// v2 JSON client's STATS reply carries no "hists" key at all — byte
// compatible with what pre-telemetry servers sent.
func TestStatsHistsMixedVersion(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour})

	// v3 client (Client.Hello announces ProtocolVersion = 3).
	v3 := dialT(t, addr)
	if _, err := v3.Hello(); err != nil {
		t.Fatal(err)
	}
	if _, err := v3.Do(wire.Request{Op: wire.OpCreate, Workload: "dot", N: 8,
		Events: []string{"PAPI_TOT_CYC"}}); err != nil {
		t.Fatal(err)
	}
	resp, err := v3.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hists) == 0 {
		t.Fatal("v3 STATS reply has no hists")
	}
	if s, ok := resp.Hists["op/HELLO/json"]; !ok || s.Count == 0 {
		t.Errorf("v3 hists lack op/HELLO/json: %v", resp.Hists)
	}
	if s, ok := resp.Hists["op/CREATE_SESSION/json"]; !ok || s.Max < s.Min {
		t.Errorf("v3 hists lack a consistent op/CREATE_SESSION/json: %+v", s)
	}

	// Raw v2 JSON client: same server, no hists in the raw reply bytes.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReader(nc)
	raw := func(line string) []byte {
		t.Helper()
		if _, err := fmt.Fprintln(nc, line); err != nil {
			t.Fatal(err)
		}
		reply, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}
	if reply := raw(`{"op":"HELLO","version":2}`); !bytes.Contains(reply, []byte(`"ok":true`)) {
		t.Fatalf("v2 HELLO: %s", reply)
	}
	reply := raw(`{"op":"STATS"}`)
	if bytes.Contains(reply, []byte(`"hists"`)) {
		t.Errorf("v2 STATS reply leaks hists: %s", reply)
	}
	var v2 wire.Response
	if err := json.Unmarshal(bytes.TrimSpace(reply), &v2); err != nil || !v2.OK || v2.Stats == nil {
		t.Fatalf("v2 STATS reply: %s (%v)", reply, err)
	}

	// A client that never said HELLO is version 0 — also no hists.
	silent := dialT(t, addr)
	resp, err = silent.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hists) != 0 {
		t.Errorf("HELLO-less client got hists: %v", resp.Hists)
	}
}

// TestStatsHistsOverBinaryCodec: the binary codec carries the summary
// map losslessly end to end.
func TestStatsHistsOverBinaryCodec(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour})
	cl := dialBinary(t, addr)
	resp, err := cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	// The HELLO itself was measured; its quantiles must be sane ns.
	s, ok := resp.Hists["op/HELLO/json"] // HELLO is answered in JSON pre-upgrade
	if !ok {
		t.Fatalf("binary STATS hists: %v", resp.Hists)
	}
	if s.Count == 0 || s.P50 <= 0 || s.P50 > s.P99 || s.P99 > s.Max+s.Max/4+1 {
		t.Errorf("implausible HELLO summary over binary: %+v", s)
	}
}

// TestSlowOpWarning: a threshold of 1ns flags every op; the warn line
// must carry the op name and the connection id through the Logf bridge.
func TestSlowOpWarning(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	_, addr := startServer(t, Config{TickInterval: time.Hour, SlowOp: time.Nanosecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		}})
	cl := dialT(t, addr)
	if _, err := cl.Do(wire.Request{Op: wire.OpStats}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, l := range lines {
		if strings.Contains(l, "slow op") && strings.Contains(l, "op=STATS") &&
			strings.Contains(l, "conn=") {
			return
		}
	}
	t.Errorf("no slow-op warn line for STATS in %q", lines)
}

// TestSlowOpDisabled: a negative threshold silences the warning even
// for glacial ops.
func TestSlowOpDisabled(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	_, addr := startServer(t, Config{TickInterval: time.Hour, SlowOp: -1,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		}})
	cl := dialT(t, addr)
	if _, err := cl.Do(wire.Request{Op: wire.OpStats}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, l := range lines {
		if strings.Contains(l, "slow op") {
			t.Errorf("slow-op warn despite SlowOp<0: %q", l)
		}
	}
}

// TestTelemetryRegistryDirect: the embedded registry is reachable for
// embedders, and Stats() agrees with the instruments behind it.
func TestTelemetryRegistryDirect(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Hour})
	cl := dialT(t, addr)
	if _, err := cl.Do(wire.Request{Op: wire.OpCreate, Workload: "dot", N: 8,
		Events: []string{"PAPI_TOT_CYC"}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := srv.Telemetry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "papid_sessions 1") {
		t.Errorf("registry sessions gauge missing:\n%s", sb.String())
	}
	sums := srv.Telemetry().Summaries()
	if s, ok := sums["op/CREATE_SESSION/json"]; !ok || s.Count != 1 {
		t.Errorf("per-op summary after one CREATE: %+v", sums)
	}
}
