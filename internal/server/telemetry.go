package server

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// slowRingSize bounds the recent slow-op sample ring.
const slowRingSize = 16

// slowRing keeps the most recent SlowOp-threshold breaches — op,
// session, duration, and (when tracing is on) the trace ID the warn
// line carried — so an operator reading STATS or /statusz can jump
// from a slow sample straight to its retained flight-recorder trace.
type slowRing struct {
	mu   sync.Mutex
	buf  []wire.SlowSample
	head int
	n    int
}

func (r *slowRing) record(op string, session uint64, ns int64, trace uint64) {
	r.mu.Lock()
	if r.buf == nil {
		r.buf = make([]wire.SlowSample, slowRingSize)
	}
	r.buf[r.head] = wire.SlowSample{Op: op, Session: session, NS: ns, TraceID: trace}
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// samples returns the recorded breaches, newest first (nil when none).
func (r *slowRing) samples() []wire.SlowSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return nil
	}
	out := make([]wire.SlowSample, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.head - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// metrics is the server's instrument set: every counter the old
// hand-maintained Stats plumbing tracked, now registry-backed so one
// increment feeds Stats(), the Prometheus /metrics exposition, the
// /statusz document, and the wire STATS histograms alike.
type metrics struct {
	reg *telemetry.Registry

	ticks         *telemetry.Counter
	snapSent      *telemetry.Counter
	snapDropped   *telemetry.Counter
	evictions     *telemetry.Counter
	deadlineTrips *telemetry.Counter
	resyncs       *telemetry.Counter
	writeDrops    *telemetry.Counter
	// tickStalls counts ticks that blocked on a full async-WAL handoff
	// queue (tick.go) — the disk falling behind the tick rate.
	tickStalls *telemetry.Counter

	// DERIVED and DELTA fan-out keep their own sent/dropped pairs so
	// snapshot accounting stays pure: snapSent/snapDropped count full
	// SNAPSHOT frames only (keyframes included, tallied separately in
	// keyframes). encodeFailures counts fan-out frames that could not
	// be serialized at all — each costs every subscriber on that codec
	// its frame, which the matching dropped counter also records.
	derivedSent    *telemetry.Counter
	derivedDropped *telemetry.Counter
	deltaSent      *telemetry.Counter
	deltaDropped   *telemetry.Counter
	keyframes      *telemetry.Counter
	encodeFailures *telemetry.Counter

	// Per-codec outbound traffic, indexed by wire.Codec.
	framesSent [2]*telemetry.Counter
	bytesSent  [2]*telemetry.Counter

	// tickDur tracks one fan-out tick end to end: workload advances,
	// counter reads, tsdb appends, and snapshot encodes for every
	// running session.
	tickDur *telemetry.Histogram

	// opLat holds one wire-latency histogram per (request op, codec):
	// decode-to-enqueue time for each request the dispatcher answers.
	// Unknown ops fall into the "other" pair.
	opLat   map[string]*[2]*telemetry.Histogram
	otherOp [2]*telemetry.Histogram
}

// opLatencyOps is every request op that gets its own latency
// histogram pair.
var opLatencyOps = []string{
	wire.OpHello, wire.OpCreate, wire.OpAddEvents, wire.OpStart,
	wire.OpRead, wire.OpSubscribe, wire.OpPublish, wire.OpStop,
	wire.OpCloseSession, wire.OpQuery, wire.OpStats, wire.OpBye,
}

func newMetrics(reg *telemetry.Registry) *metrics {
	m := &metrics{reg: reg}
	m.ticks = reg.NewCounter(telemetry.Opts{Name: "papid_ticks_total",
		Help: "Snapshot fan-out ticks run."})
	m.snapSent = reg.NewCounter(telemetry.Opts{Name: "papid_snapshots_sent_total",
		Help: "Snapshot frames enqueued to subscribers."})
	m.snapDropped = reg.NewCounter(telemetry.Opts{Name: "papid_snapshots_dropped_total",
		Help: "Snapshot frames dropped from full subscriber queues."})
	m.evictions = reg.NewCounter(telemetry.Opts{Name: "papid_evictions_total",
		Help: "Connections the server cut loose (idle, deadline trips, jammed queues)."})
	m.deadlineTrips = reg.NewCounter(telemetry.Opts{Name: "papid_deadline_trips_total",
		Help: "Read/write deadline expirations that led to an eviction."})
	m.resyncs = reg.NewCounter(telemetry.Opts{Name: "papid_resyncs_total",
		Help: "Malformed frames answered with an ERROR frame and skipped."})
	m.writeDrops = reg.NewCounter(telemetry.Opts{Name: "papid_write_drops_total",
		Help: "Snapshot frames dropped from per-connection write queues."})
	m.tickStalls = reg.NewCounter(telemetry.Opts{Name: "papid_tick_stalls_total",
		Help: "Ticks that blocked handing a history row to the WAL appender (full queue)."})
	m.derivedSent = reg.NewCounter(telemetry.Opts{Name: "papid_derived_sent_total",
		Help: "DERIVED frames enqueued to subscribers."})
	m.derivedDropped = reg.NewCounter(telemetry.Opts{Name: "papid_derived_dropped_total",
		Help: "DERIVED frames dropped from full subscriber queues or failed encodes."})
	m.deltaSent = reg.NewCounter(telemetry.Opts{Name: "papid_deltas_sent_total",
		Help: "DELTA frames enqueued to delta-mode subscribers."})
	m.deltaDropped = reg.NewCounter(telemetry.Opts{Name: "papid_deltas_dropped_total",
		Help: "DELTA frames dropped from full subscriber queues or failed encodes."})
	m.keyframes = reg.NewCounter(telemetry.Opts{Name: "papid_keyframes_sent_total",
		Help: "Keyframe snapshots enqueued to delta-mode subscribers (cadence, subscribe, or drop resync)."})
	m.encodeFailures = reg.NewCounter(telemetry.Opts{Name: "papid_encode_failures_total",
		Help: "Fan-out frames that failed to serialize (logged once, dropped for every subscriber on the codec)."})
	for _, codec := range []wire.Codec{wire.CodecJSON, wire.CodecBinary} {
		label := telemetry.Label{Name: "codec", Value: codec.String()}
		m.framesSent[codec] = reg.NewCounter(telemetry.Opts{
			Name: "papid_frames_sent_total", Help: "Outbound frames written, by codec.",
			Labels: []telemetry.Label{label}})
		m.bytesSent[codec] = reg.NewCounter(telemetry.Opts{
			Name: "papid_bytes_sent_total", Help: "Outbound payload bytes written, by codec.",
			Labels: []telemetry.Label{label}})
	}
	m.tickDur = reg.NewLatencyHistogram(telemetry.Opts{
		Name: "papid_tick_duration_seconds",
		Help: "Snapshot fan-out tick duration (advance + read + append + encode).",
		Key:  "tick"})
	m.opLat = make(map[string]*[2]*telemetry.Histogram, len(opLatencyOps))
	for _, op := range opLatencyOps {
		m.opLat[op] = m.newOpPair(op)
	}
	m.otherOp = *m.newOpPair("OTHER")
	return m
}

func (m *metrics) newOpPair(op string) *[2]*telemetry.Histogram {
	var pair [2]*telemetry.Histogram
	for _, codec := range []wire.Codec{wire.CodecJSON, wire.CodecBinary} {
		pair[codec] = m.reg.NewLatencyHistogram(telemetry.Opts{
			Name: "papid_op_latency_seconds",
			Help: "Wire request latency, decode to reply enqueue, by op and codec.",
			Labels: []telemetry.Label{
				{Name: "op", Value: op},
				{Name: "codec", Value: codec.String()},
			},
			Key: "op/" + op + "/" + codec.String(),
		})
	}
	return &pair
}

// observeOp records one request's service latency.
func (m *metrics) observeOp(op string, codec wire.Codec, start time.Time) {
	pair, ok := m.opLat[op]
	if !ok {
		pair = &m.otherOp
	}
	pair[codec].Observe(telemetry.Since(start))
}

// registerServerFuncs wires the scrape-time views of state that lives
// outside the instrument set: registry size, live connections, queued
// frames, allocation-cache totals, and process-level gauges. Called
// once from New, after the server's components exist.
func (s *Server) registerServerFuncs() {
	reg := s.m.reg
	reg.NewGaugeFunc(telemetry.Opts{Name: "papid_sessions",
		Help: "Live sessions."}, func() float64 {
		return float64(s.reg.count())
	})
	reg.NewGaugeFunc(telemetry.Opts{Name: "papid_connections",
		Help: "Open client connections."}, func() float64 {
		s.connsMu.Lock()
		n := len(s.conns)
		s.connsMu.Unlock()
		return float64(n)
	})
	reg.NewGaugeFunc(telemetry.Opts{Name: "papid_write_queue_frames",
		Help: "Frames currently queued across all per-connection write queues."},
		func() float64 {
			s.connsMu.Lock()
			conns := make([]*conn, 0, len(s.conns))
			for c := range s.conns {
				conns = append(conns, c)
			}
			s.connsMu.Unlock()
			total := 0
			for _, c := range conns {
				total += c.q.len()
			}
			return float64(total)
		})
	reg.NewCounterFunc(telemetry.Opts{Name: "papid_alloc_cache_hits_total",
		Help: "Allocation-cache hits."}, func() uint64 {
		hits, _ := s.cache.counters()
		return hits
	})
	reg.NewCounterFunc(telemetry.Opts{Name: "papid_alloc_cache_misses_total",
		Help: "Allocation-cache misses."}, func() uint64 {
		_, misses := s.cache.counters()
		return misses
	})
	reg.NewGaugeFunc(telemetry.Opts{Name: "papid_tick_workers",
		Help: "Configured parallel tick sweep width."}, func() float64 {
		return float64(s.cfg.TickWorkers)
	})
	reg.NewGaugeFunc(telemetry.Opts{Name: "papid_wal_queue_rows",
		Help: "Tick rows currently queued to the async WAL appender (0 when not durable)."},
		func() float64 {
			if s.histCh == nil {
				return 0
			}
			return float64(len(s.histCh))
		})
	reg.NewGaugeFunc(telemetry.Opts{Name: "papid_goroutines",
		Help: "Goroutines in the papid process."}, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	start := time.Now()
	reg.NewGaugeFunc(telemetry.Opts{Name: "papid_uptime_seconds",
		Help: "Seconds since the server was built."}, func() float64 {
		return time.Since(start).Seconds()
	})
	// Flight-recorder counters read straight from the tracer; with
	// tracing off (nil tracer) TracerStats is zero, so the series
	// simply read 0 rather than disappearing between configs.
	reg.NewCounterFunc(telemetry.Opts{Name: "papid_traces_started_total",
		Help: "Traced units started (ticks, requests, WAL batches)."}, func() uint64 {
		return s.trc.TracerStats().Started
	})
	reg.NewCounterFunc(telemetry.Opts{Name: "papid_traces_retained_total",
		Help: "Traces kept in the /tracez ring (head-sampled, slow, or errored)."}, func() uint64 {
		return s.trc.TracerStats().Retained
	})
	reg.NewCounterFunc(telemetry.Opts{Name: "papid_traces_kept_slow_total",
		Help: "Traces tail-retained for exceeding the slow threshold."}, func() uint64 {
		return s.trc.TracerStats().KeptSlow
	})
	reg.NewCounterFunc(telemetry.Opts{Name: "papid_traces_kept_err_total",
		Help: "Traces tail-retained for carrying an error."}, func() uint64 {
		return s.trc.TracerStats().KeptErr
	})
}
