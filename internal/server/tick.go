// Parallel tick pipeline (DESIGN.md S31). Two independent pieces live
// here:
//
//   - the sharded parallel sweep — the per-tick walk over the session
//     registry partitioned across a fixed pool of workers
//     (Config.TickWorkers), each running the full per-session unit
//     (snapshot → history → derive → encode → fan-out) for the
//     sessions of the shards it claims;
//   - the async WAL handoff — on a durable server, tick rows go to a
//     bounded queue drained by one dedicated appender goroutine that
//     batches each drain into a single wal.AppendRows call, taking
//     journal writes (and under -fsync always, fsyncs) off the tick's
//     critical path.
//
// Why partitioning by shard is enough for correctness: every ordering
// guarantee the fan-out makes is per-session (per-subscriber seq
// monotonicity, delta keyframe chaining, DERIVED-follows-SNAPSHOT),
// and a session lives in exactly one registry shard, so one worker
// owns all of a session's tick work for the whole tick. State shared
// across sessions is concurrency-safe on its own: the tsdb store and
// WAL take their own locks, the derive engine stripes its session
// state, telemetry counters are striped atomics, and the shared
// encode-buffer pool is reference-counted.
package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry/tracing"
	"repro/internal/tsdb/wal"
)

// tickJob is one tick's sweep, shared by every worker helping with it.
// Workers claim registry shards through the atomic cursor until none
// remain — work-stealing granularity of one shard, so a shard heavy
// with sessions never pins the sweep behind a static partition.
type tickJob struct {
	now    int64
	cursor atomic.Int64
	wg     sync.WaitGroup
	// trc is the tick's trace (nil untraced). Workers hang one "shard"
	// span per claimed shard off its root; the Trace is internally
	// locked, so concurrent workers append safely.
	trc *tracing.Trace
}

// runSweep claims and sweeps shards until the job is exhausted.
// worker identifies the sweeping goroutine (0 is the tick goroutine)
// in shard-span annotations — the Perfetto export maps it to a thread
// track, making the sweep's actual parallelism visible.
func (s *Server) runSweep(job *tickJob, worker int) {
	n := int64(len(s.reg.shards))
	for {
		i := job.cursor.Add(1) - 1
		if i >= n {
			return
		}
		sp := job.trc.StartSpan(tracing.NoSpan, "shard")
		swept := s.reg.sweepShard(int(i), func(sess *session) {
			s.tickSession(sess, job.now, job.trc, sp)
		})
		if job.trc != nil {
			job.trc.AnnotateInt(sp, "shard", i)
			job.trc.AnnotateInt(sp, "worker", int64(worker))
			job.trc.AnnotateInt(sp, "sessions", int64(swept))
			job.trc.EndSpan(sp)
		}
	}
}

// tickWorker is one pool worker, started by Serve: it waits for tick
// jobs and helps sweep them, exiting on shutdown. A worker that has
// taken a job always finishes it before re-checking the context, so a
// tick's WaitGroup cannot be left hanging by a racing cancel.
func (s *Server) tickWorker(worker int) {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case job := <-s.tickWork:
			s.runSweep(job, worker)
			job.wg.Done()
		}
	}
}

// tickParallel sweeps the registry with TickWorkers-wide parallelism.
// The tick goroutine always participates as worker zero; up to
// TickWorkers-1 pool workers join via the unbuffered handoff channel.
// A helper slot whose pool worker is not immediately ready — or the
// pool is not running at all, as when tests and benchmarks drive
// tick() directly without Serve — is filled by an ephemeral goroutine,
// so the sweep width is TickWorkers either way.
func (s *Server) tickParallel(now int64, t *tracing.Trace) {
	job := &tickJob{now: now, trc: t}
	helpers := s.cfg.TickWorkers - 1
	job.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		select {
		case s.tickWork <- job:
		default:
			// Worker IDs only label trace spans; an ephemeral helper
			// reuses its slot number (i+1), which can collide with a
			// pool worker's spawn index — two tracks sharing a lane in
			// the export, never a correctness issue.
			go func(worker int) {
				defer job.wg.Done()
				s.runSweep(job, worker)
			}(i + 1)
		}
	}
	s.runSweep(job, 0)
	job.wg.Wait()
}

// tickSession is the per-session tick unit: snapshot → history append
// → snapshot fan-out → derived fan-out. It is the loop body of both
// the serial sweep (TickWorkers 1, exactly the pre-parallel pipeline)
// and each parallel worker.
//
// Stage spans are recorded only on detailed (head-sampled) traces:
// with thousands of sessions, per-session spans on every
// tail-candidate tick would dwarf the work they measure. Coarse
// shard spans (runSweep) and the WAL-stall error mark stay
// unconditional.
func (s *Server) tickSession(sess *session, now int64, t *tracing.Trace, parent tracing.SpanRef) {
	if !t.Detailed() {
		resp, subs, ok := sess.snapshot()
		if !ok {
			return
		}
		s.appendTickHistory(t, resp.Session, now, resp.Events, resp.Values)
		s.fanout(t, parent, sess, resp, subs)
		s.fanoutDerived(t, parent, sess, resp, subs, now)
		return
	}
	ss := t.StartSpan(parent, "session")
	t.AnnotateInt(ss, "session", int64(sess.id))
	sp := t.StartSpan(ss, "snapshot")
	resp, subs, ok := sess.snapshot()
	t.EndSpan(sp)
	if !ok {
		t.EndSpan(ss)
		return
	}
	hs := t.StartSpan(ss, "tsdb.append")
	s.appendTickHistory(t, resp.Session, now, resp.Events, resp.Values)
	t.EndSpan(hs)
	fs := t.StartSpan(ss, "fanout")
	t.AnnotateInt(fs, "subs", int64(len(subs)))
	s.fanout(t, fs, sess, resp, subs)
	t.EndSpan(fs)
	ds := t.StartSpan(ss, "derive")
	s.fanoutDerived(t, ds, sess, resp, subs, now)
	t.EndSpan(ds)
	t.EndSpan(ss)
}

// histRow is one tick row in flight to the WAL appender. Both slices
// are safe to retain past the tick: Events is the session's
// copy-on-write name slice and Vals the tick's freshly allocated
// snapshot values — nothing reuses either after the handoff.
type histRow struct {
	session uint64
	ts      int64
	events  []string
	vals    []int64
}

// appendTickHistory records one tick row. On a durable server with the
// appender running, the row goes to the bounded handoff queue and the
// journal write leaves the tick's critical path; a full queue blocks
// the tick (counted in tick_stalls) rather than dropping the row —
// backpressure, never silent data loss. PUBLISH rows and non-durable
// history keep the synchronous path: a PUBLISH ack must continue to
// imply the row was journaled, and RAM-only appends are too cheap to
// be worth a queue.
func (s *Server) appendTickHistory(t *tracing.Trace, session uint64, ts int64, events []string, vals []int64) {
	if s.histOn.Load() {
		row := histRow{session: session, ts: ts, events: events, vals: vals}
		select {
		case s.histCh <- row:
			return
		default:
		}
		s.m.tickStalls.Inc()
		// A stall marks the tick's trace as errored, so the flight
		// recorder always keeps the evidence of a disk that cannot keep
		// up — the span measures exactly the blocked handoff.
		sp := t.StartSpan(tracing.NoSpan, "wal.stall")
		s.histCh <- row
		if t != nil {
			t.EndSpan(sp)
			t.SetError("tick stalled on full WAL handoff queue")
		}
		return
	}
	s.appendHistory(session, ts, events, vals)
}

// histBatchMax bounds how many rows one appender drain coalesces into
// a single wal.AppendRows call.
const histBatchMax = 256

// histLoop is the dedicated WAL appender: it drains the handoff queue,
// coalescing every immediately available row into one batched
// AppendRows call — one WAL lock acquisition and (under -fsync always)
// one fsync per drained batch, which in steady state is one tick's
// rows. Write-ahead ordering relative to seal/truncate is untouched:
// batching sits above wal.Log, and inside AppendRows every row still
// hits the journal before the store sees it. A WAL write failure
// degrades exactly as the synchronous path did — that row stays
// RAM-only, counted and logged by the WAL itself.
//
// Shutdown protocol: Shutdown closes histQuit only after the tick loop
// and workers have joined, so no new rows can arrive; histLoop then
// drains what is queued, journals it, and closes histDone — the signal
// that wal.Close may run without abandoning acked-to-the-queue rows.
func (s *Server) histLoop() {
	defer close(s.histDone)
	batch := make([]wal.Row, 0, histBatchMax)
	for {
		var row histRow
		select {
		case row = <-s.histCh:
		case <-s.histQuit:
			s.histOn.Store(false)
			for {
				select {
				case row = <-s.histCh:
					s.wal.AppendBatch(row.session, row.ts, row.events, row.vals)
				default:
					return
				}
			}
		}
		batch = append(batch[:0], wal.Row{Session: row.session, TS: row.ts,
			Events: row.events, Vals: row.vals})
		for len(batch) < histBatchMax {
			select {
			case row = <-s.histCh:
				batch = append(batch, wal.Row{Session: row.session, TS: row.ts,
					Events: row.events, Vals: row.vals})
				continue
			default:
			}
			break
		}
		// Each drained batch is its own traced unit ("wal" kind): the
		// journal-write and fsync spans live inside AppendRowsTraced,
		// and a write error tail-retains the batch's trace.
		t := s.trc.Start("wal", "wal.batch")
		t.AnnotateInt(tracing.NoSpan, "rows", int64(len(batch)))
		if err := s.wal.AppendRowsTraced(batch, t); err != nil && t != nil {
			t.SetError(err.Error())
		}
		s.trc.Finish(t)
	}
}

// maxPooledFrame bounds what the frame-buffer pools retain; a rare
// oversized frame is left to the GC instead of pinning its array.
const maxPooledFrame = 1 << 16

// sharedBuf is a reference-counted, pooled encode buffer for fan-out
// frames. A fan-out serializes each distinct frame once per codec and
// shares the bytes across every subscriber queue; the refcount is one
// for the encCache that owns the encode plus one per enqueued frame,
// and whoever drops the last reference returns the buffer to the pool.
// Every deliberate discard path releases (queue drop-oldest, write
// queue eviction, jam, the socket write itself); frames abandoned
// inside a torn-down subscriber channel are simply never released and
// fall to the GC — a pool miss, never a reuse-while-referenced.
type sharedBuf struct {
	buf  []byte
	refs atomic.Int32
}

var sharedBufPool = sync.Pool{New: func() any { return new(sharedBuf) }}

// newSharedBuf takes a pooled buffer with one reference (the encoding
// cache's own).
func newSharedBuf() *sharedBuf {
	sb := sharedBufPool.Get().(*sharedBuf)
	sb.refs.Store(1)
	return sb
}

// ref takes one more reference, for a frame about to be enqueued.
func (sb *sharedBuf) ref() { sb.refs.Add(1) }

func (sb *sharedBuf) release() {
	if sb.refs.Add(-1) == 0 {
		if cap(sb.buf) <= maxPooledFrame {
			sb.buf = sb.buf[:0]
			sharedBufPool.Put(sb)
		}
	}
}

// viewSubsPool recycles the filtered-subscriber scratch slice fanout
// builds each session-tick (see Server.fanout).
var viewSubsPool = sync.Pool{New: func() any { return new([]*subscriber) }}
