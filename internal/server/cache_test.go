package server

import (
	"testing"

	"repro/internal/hwsim"
)

func archFor(t *testing.T, platform string) *hwsim.Arch {
	t.Helper()
	a, ok := hwsim.ArchByPlatform(platform)
	if !ok {
		t.Fatalf("no arch for %s", platform)
	}
	return a
}

func someCodes(t *testing.T, a *hwsim.Arch, n int) []uint32 {
	t.Helper()
	if len(a.Events) < n {
		t.Fatalf("%s has %d events, need %d", a.Platform, len(a.Events), n)
	}
	codes := make([]uint32, n)
	for i := 0; i < n; i++ {
		codes[i] = a.Events[i].Code
	}
	return codes
}

func TestCacheHitOnRepeatAndReorder(t *testing.T) {
	a := archFor(t, hwsim.PlatformLinuxX86)
	c := newAllocCache(8)
	codes := someCodes(t, a, 2)

	first, err := c.assign(a, codes)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.counters(); hits != 0 || misses != 1 {
		t.Fatalf("after first solve: hits=%d misses=%d", hits, misses)
	}
	// Same subset, reversed order: must replay, not re-solve.
	rev := []uint32{codes[1], codes[0]}
	second, err := c.assign(a, rev)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := c.counters(); hits != 1 {
		t.Fatal("reordered subset missed the cache")
	}
	for code, ctr := range first {
		if second[code] != ctr {
			t.Errorf("event %#x: counter %d vs %d across hits", code, ctr, second[code])
		}
	}
}

func TestCacheDistinguishesPlatforms(t *testing.T) {
	x86 := archFor(t, hwsim.PlatformLinuxX86)
	t3e := archFor(t, hwsim.PlatformCrayT3E)
	c := newAllocCache(8)
	// Both arch tables start event codes at the same place often enough
	// that an arch-blind key would collide; the platform prefix keeps
	// them apart.
	if _, err := c.assign(x86, someCodes(t, x86, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.assign(t3e, someCodes(t, t3e, 1)); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.counters(); hits != 0 || misses != 2 {
		t.Errorf("hits=%d misses=%d, want 0/2", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	a := archFor(t, hwsim.PlatformAIXPower3) // 8 counters, many events
	c := newAllocCache(2)
	all := someCodes(t, a, 3)
	k1, k2, k3 := all[:1], all[1:2], all[2:3]

	c.assign(a, k1)
	c.assign(a, k2)
	c.assign(a, k3) // evicts k1
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	c.assign(a, k1) // miss again
	if _, misses := c.counters(); misses != 4 {
		t.Errorf("misses=%d, want 4 (k1 evicted)", misses)
	}
	// k3 was freshly used; k2 is now the LRU victim.
	c.assign(a, k3)
	if hits, _ := c.counters(); hits != 1 {
		t.Errorf("hits=%d, want 1 (k3 still resident)", hits)
	}
}

func TestCacheNegativeEntries(t *testing.T) {
	// IRIX R10000: 2 counters; three events cannot all fit, and the
	// failure itself should be memoized.
	a := archFor(t, hwsim.PlatformIRIXMips)
	c := newAllocCache(8)
	codes := someCodes(t, a, 3)
	if _, err := c.assign(a, codes); err == nil {
		t.Skip("three events unexpectedly allocatable; pick a denser conflict")
	}
	if _, err := c.assign(a, codes); err == nil {
		t.Fatal("cached failure lost")
	}
	if hits, misses := c.counters(); hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestSolveAllocMatchesVerify(t *testing.T) {
	// The memoized assignment must be a real allocation: distinct
	// counters, each allowed by the event's mask.
	for _, platform := range hwsim.Platforms() {
		a := archFor(t, platform)
		codes := someCodes(t, a, 2)
		got, err := solveAlloc(a, codes)
		if err != nil {
			// Some two-event combinations legitimately conflict
			// (e.g. strict PIC0/PIC1 splits); skip those.
			continue
		}
		seen := map[int]bool{}
		for code, ctr := range got {
			ev, _ := a.EventByCode(code)
			if ctr < 0 || ctr >= a.NumCounters {
				t.Errorf("%s: counter %d out of range", platform, ctr)
			}
			if ev.CounterMask&(1<<uint(ctr)) == 0 {
				t.Errorf("%s: event %s on disallowed counter %d", platform, ev.Name, ctr)
			}
			if seen[ctr] {
				t.Errorf("%s: counter %d double-booked", platform, ctr)
			}
			seen[ctr] = true
		}
	}
}
