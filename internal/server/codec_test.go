package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/wire"
)

// dialBinary dials with the binary codec preference and performs the
// handshake, failing the test unless the server confirmed the upgrade.
func dialBinary(t testing.TB, addr string) *Client {
	t.Helper()
	cl, err := DialRetry(addr, RetryConfig{Timeout: 30 * time.Second, PreferBinary: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	hello, err := cl.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if hello.Codec != wire.CodecNameBinary || cl.Codec() != wire.CodecBinary {
		t.Fatalf("binary upgrade not negotiated: reply codec %q, client codec %s",
			hello.Codec, cl.Codec())
	}
	return cl
}

// TestBinaryNegotiationEndToEnd drives the whole v3 upgrade path: a
// JSON HELLO asking for binary, a confirming reply, then every papid
// op — create/start/read, a subscription snapshot stream, QUERY over
// accumulated history, STATS — on binary frames, with the per-codec
// byte and frame counters proving which codec carried the traffic.
func TestBinaryNegotiationEndToEnd(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Millisecond})
	cl := dialBinary(t, addr)

	created, err := cl.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_CYC", "PAPI_FP_INS"}, Workload: "dot", N: 256})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session
	if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: id}); err != nil {
		t.Fatal(err)
	}

	// A second binary connection subscribes and must see a live
	// snapshot stream in binary frames.
	sub := dialBinary(t, addr)
	if _, err := sub.Do(wire.Request{Op: wire.OpSubscribe, Session: id}); err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for i := 0; i < 3; i++ {
		snap, err := sub.Next()
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if snap.Op != wire.OpSnapshot || snap.Session != id {
			t.Fatalf("snapshot %d: %+v", i, snap)
		}
		if snap.Seq <= lastSeq {
			t.Fatalf("snapshot %d: seq %d after %d", i, snap.Seq, lastSeq)
		}
		if len(snap.Values) != 2 {
			t.Fatalf("snapshot %d: values %v", i, snap.Values)
		}
		lastSeq = snap.Seq
	}

	read, err := cl.Do(wire.Request{Op: wire.OpRead, Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if len(read.Values) != 2 {
		t.Fatalf("READ over binary: %+v", read)
	}

	// Ticks have been persisting history; a QUERY result (the other
	// payload-heavy frame) must round-trip its series in binary.
	deadline := time.Now().Add(5 * time.Second)
	var q wire.Response
	for {
		q, err = cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
			From: 0, To: 1<<63 - 1, Step: 0})
		if err == nil && len(q.Series) > 0 && len(q.Series[0].Buckets) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no query buckets before deadline: %+v, %v", q, err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	st, err := cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats["frames_sent_binary"] == 0 || st.Stats["bytes_sent_binary"] == 0 {
		t.Errorf("binary counters empty: %v", st.Stats)
	}
	// Each connection's HELLO reply went out before its upgrade, so
	// JSON counters must be non-zero too — and tiny next to binary.
	if st.Stats["frames_sent_json"] == 0 {
		t.Errorf("JSON HELLO replies not counted: %v", st.Stats)
	}

	stats := srv.Stats()
	if stats.FramesSentBinary != st.Stats["frames_sent_binary"] && stats.FramesSentBinary == 0 {
		t.Errorf("Stats() binary frame counter: %+v", stats)
	}
}

// TestV2JSONClientUnmodified pins backward compatibility at the byte
// level: a plain JSON-lines peer that never mentions codecs speaks to
// the v3 server exactly as before — every reply byte is a parseable
// JSON line and the binary counters stay at zero.
func TestV2JSONClientUnmodified(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Millisecond})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReader(nc)
	roundTrip := func(reqLine string) wire.Response {
		t.Helper()
		if _, err := fmt.Fprintln(nc, reqLine); err != nil {
			t.Fatal(err)
		}
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp wire.Response
		if err := json.Unmarshal(bytes.TrimSpace(line), &resp); err != nil {
			t.Fatalf("reply %q is not a JSON line: %v", line, err)
		}
		return resp
	}

	hello := roundTrip(`{"op":"HELLO","version":2}`)
	if !hello.OK || hello.Codec != "" {
		t.Fatalf("v2 HELLO reply: %+v", hello)
	}
	if hello.Protocol < 2 {
		t.Fatalf("server protocol %d < 2", hello.Protocol)
	}
	created := roundTrip(`{"op":"CREATE_SESSION","events":["PAPI_TOT_CYC"],"workload":"dot","n":64}`)
	if !created.OK {
		t.Fatalf("create: %+v", created)
	}
	if resp := roundTrip(fmt.Sprintf(`{"op":"START","session":%d}`, created.Session)); !resp.OK {
		t.Fatalf("start: %+v", resp)
	}
	if resp := roundTrip(fmt.Sprintf(`{"op":"READ","session":%d}`, created.Session)); !resp.OK || len(resp.Values) != 1 {
		t.Fatalf("read: %+v", resp)
	}

	st := srv.Stats()
	if st.FramesSentBinary != 0 || st.BytesSentBinary != 0 {
		t.Errorf("binary frames sent to a JSON-only client: %+v", st)
	}
	if st.FramesSentJSON == 0 || st.BytesSentJSON == 0 {
		t.Errorf("JSON counters empty: %+v", st)
	}
}

// TestV2HelloDoesNotUpgrade: a v2 peer that (incoherently) asks for
// the binary codec must be left on JSON — the codec floor is the v3
// protocol bump, not the request field.
func TestV2HelloDoesNotUpgrade(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl := dialT(t, addr)
	resp, err := cl.Do(wire.Request{Op: wire.OpHello, Version: 2, Codec: wire.CodecNameBinary})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Codec != "" {
		t.Fatalf("v2 HELLO got codec %q", resp.Codec)
	}
	if cl.Codec() != wire.CodecJSON {
		t.Fatalf("client codec %s, want json", cl.Codec())
	}
}

// TestHelloAfterSubscribeStaysJSON: the upgrade window closes once a
// connection subscribes — a late HELLO must not flip the codec under a
// concurrent snapshot stream.
func TestHelloAfterSubscribeStaysJSON(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Millisecond})
	cl := dialT(t, addr)
	created, err := cl.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_CYC"}, Workload: "dot", N: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: created.Session}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpSubscribe, Session: created.Session}); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Do(wire.Request{Op: wire.OpHello,
		Version: wire.ProtocolVersion, Codec: wire.CodecNameBinary})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Codec != "" {
		t.Fatalf("HELLO after SUBSCRIBE confirmed codec %q", resp.Codec)
	}
}

// TestV3ClientAgainstJSONOnlyServer: a PreferBinary client dialing a
// server that never confirms the codec (a v2 papid, simulated by a
// minimal JSON-lines responder) must transparently stay on JSON.
func TestV3ClientAgainstJSONOnlyServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		dec := wire.NewDecoder(nc)
		enc := wire.NewEncoder(nc)
		for {
			var req wire.Request
			if err := dec.Decode(&req); err != nil {
				return
			}
			// A v2 server: echoes OK replies, never sets Codec.
			resp := wire.Response{Op: req.Op, OK: true, Protocol: 2}
			if req.Op == wire.OpRead {
				resp.Values = []int64{42}
			}
			if err := enc.Encode(&resp); err != nil {
				return
			}
		}
	}()

	cl, err := DialRetry(ln.Addr().String(), RetryConfig{Timeout: 10 * time.Second, PreferBinary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	hello, err := cl.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if hello.Codec != "" || cl.Codec() != wire.CodecJSON {
		t.Fatalf("client upgraded against a JSON-only server: reply %+v, codec %s",
			hello, cl.Codec())
	}
	read, err := cl.Do(wire.Request{Op: wire.OpRead})
	if err != nil || len(read.Values) != 1 || read.Values[0] != 42 {
		t.Fatalf("READ on the fallback path: %+v, %v", read, err)
	}
}

// TestReconnClientBinaryReplay: the reconnecting client re-negotiates
// binary on every redial, and a replayable request issued across a
// severed connection lands on a freshly upgraded stream.
func TestReconnClientBinaryReplay(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour})
	rc, err := DialReconn(addr, RetryConfig{Timeout: 30 * time.Second, PreferBinary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.Hello().Codec != wire.CodecNameBinary {
		t.Fatalf("initial handshake: %+v", rc.Hello())
	}

	created, err := rc.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_CYC"}, Workload: "dot", N: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Do(wire.Request{Op: wire.OpStart, Session: created.Session}); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Do(wire.Request{Op: wire.OpRead, Session: created.Session}); err != nil {
		t.Fatal(err)
	}

	rc.cl.nc.Close() // sever mid-life; the next Do must redial
	read, err := rc.Do(wire.Request{Op: wire.OpRead, Session: created.Session})
	if err != nil {
		t.Fatalf("READ across reconnect: %v", err)
	}
	if len(read.Values) != 1 {
		t.Fatalf("replayed READ: %+v", read)
	}
	if rc.Reconnects != 1 {
		t.Errorf("reconnects = %d, want 1", rc.Reconnects)
	}
	if rc.cl.Codec() != wire.CodecBinary || rc.Hello().Codec != wire.CodecNameBinary {
		t.Errorf("binary not re-negotiated after redial: codec %s, hello %+v",
			rc.cl.Codec(), rc.Hello())
	}
}

// TestBinaryMidFrameCutEviction: a binary peer cut mid-frame leaves
// the server with a truncated length-prefixed frame — a fatal framing
// error. The server must evict that connection cleanly (one ERROR
// attempt, counted eviction) while a healthy binary client on the
// same server keeps working.
func TestBinaryMidFrameCutEviction(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Hour})
	healthy := dialBinary(t, addr)

	// Handshake in JSON by hand so the cut can be placed precisely:
	// let the HELLO line through, then sever two bytes into the first
	// binary frame.
	helloLine := fmt.Sprintf(`{"op":"HELLO","version":%d,"codec":"binary"}`, wire.ProtocolVersion) + "\n"
	frame, err := wire.AppendFrame(nil, wire.CodecBinary,
		&wire.Request{Op: wire.OpCreate, Events: []string{"PAPI_TOT_CYC"}, Workload: "dot", N: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) < 4 {
		t.Fatalf("binary frame implausibly short: %d bytes", len(frame))
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := faultnet.WrapConn(nc, faultnet.Faults{CutAfter: int64(len(helloLine) + 2)})
	defer fc.Close()
	fc.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := fc.Write([]byte(helloLine)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(fc)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var hello wire.Response
	if err := json.Unmarshal(bytes.TrimSpace(line), &hello); err != nil {
		t.Fatalf("hello reply %q: %v", line, err)
	}
	if hello.Codec != wire.CodecNameBinary {
		t.Fatalf("no upgrade: %+v", hello)
	}
	if _, err := fc.Write(frame); err == nil {
		t.Fatal("faultnet cut never fired")
	}

	// The server sees EOF two bytes into a promised frame: fatal. It
	// must count an eviction without wedging anything else.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Evictions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("mid-frame cut never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := healthy.Do(wire.Request{Op: wire.OpStats}); err != nil {
		t.Fatalf("healthy client after neighbor eviction: %v", err)
	}
}

// TestBinaryGarbagePayloadAnsweredNotEvicted: a recoverable binary
// error (bad payload, intact framing) gets an ERROR reply and the
// connection lives on — parity with the JSON resync behavior.
func TestBinaryGarbagePayloadAnsweredNotEvicted(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Hour})
	cl := dialBinary(t, addr)

	// Reach under the client abstraction to inject a framed-but-bogus
	// payload, then decode the server's answer with the same Decoder
	// the client uses.
	raw := []byte{4, 0xff, 0xff, 0xff, 0xff} // prefix 4, then impossible field bits
	if _, err := cl.nc.Write(raw); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Next()
	if err != nil {
		t.Fatalf("ERROR frame after garbage payload: %v", err)
	}
	if resp.OK || resp.Op != wire.OpError {
		t.Fatalf("reply to garbage payload: %+v", resp)
	}
	if got := srv.Stats().Resyncs; got == 0 {
		t.Error("recoverable binary error not counted as a resync")
	}
	// The stream recovered: a real request on the same connection works.
	if _, err := cl.Do(wire.Request{Op: wire.OpStats}); err != nil {
		t.Fatalf("request after recoverable error: %v", err)
	}
	if srv.Stats().Evictions != 0 {
		t.Error("recoverable error evicted the connection")
	}
}

// TestCodecStringNames pins the negotiation token spelling.
func TestCodecStringNames(t *testing.T) {
	if wire.CodecJSON.String() != "json" || wire.CodecBinary.String() != wire.CodecNameBinary {
		t.Fatalf("codec names: %s, %s", wire.CodecJSON, wire.CodecBinary)
	}
	if !strings.EqualFold(wire.CodecNameBinary, "binary") {
		t.Fatalf("negotiation token: %q", wire.CodecNameBinary)
	}
}
