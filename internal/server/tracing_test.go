package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry/tracing"
	"repro/internal/wire"
)

// TestTraceSlowOpRetained is the flight recorder's headline promise:
// a SlowOp-triggering request produces a warn line carrying a trace
// ID, the reply returns the same ID to the v4 client, and the trace
// is tail-retained — retrievable through /debug/trace?id= in both
// native and Chrome trace-event form — even though head sampling
// never picked it.
func TestTraceSlowOpRetained(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	srv, addr := startServer(t, Config{TickInterval: time.Hour,
		SlowOp: time.Nanosecond, // every op breaches
		// Head sampling effectively off: only tail retention can keep
		// the trace.
		TraceSample: 1 << 30,
		TraceSlow:   time.Nanosecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		}})
	cl := dialT(t, addr)
	if _, err := cl.Hello(); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == 0 {
		t.Fatal("v4 reply carries no trace ID")
	}
	id := tracing.FormatID(resp.TraceID)

	mu.Lock()
	warned := false
	for _, l := range lines {
		if strings.Contains(l, "slow op") && strings.Contains(l, "trace="+id) {
			warned = true
		}
	}
	mu.Unlock()
	if !warned {
		t.Errorf("no slow-op warn line carrying trace=%s in %q", id, lines)
	}

	// The writer finishes the trace around flushing the frame, so the
	// ring insert races the client's read by at most a scheduling
	// quantum; poll briefly rather than flake.
	tr := waitTrace(t, srv, resp.TraceID)
	view := tr.View()
	if view.Retained != "slow" {
		t.Errorf("retained = %q, want slow (head sampling was off)", view.Retained)
	}
	names := spanNames(view)
	for _, want := range []string{"STATS", "dispatch", "write"} {
		if !names[want] {
			t.Errorf("request trace lacks span %q; has %v", want, names)
		}
	}

	// Retrieval over the admin surface, both formats.
	h := tracing.TraceHandler(srv.trc)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id="+id, nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), id) {
		t.Errorf("/debug/trace?id=%s: code %d body %s", id, rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id="+id+"&format=chrome", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "traceEvents") ||
		!strings.Contains(rec.Body.String(), `"dispatch"`) {
		t.Errorf("chrome export wrong: code %d body %s", rec.Code, rec.Body.String())
	}

	// A second STATS sees the breach in the slow-sample ring, trace ID
	// attached.
	resp2, err := cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Slow) == 0 {
		t.Fatal("v4 STATS reply has no slow samples after a breach")
	}
	found := false
	for _, s := range resp2.Slow {
		if s.Op == wire.OpStats && s.TraceID == resp.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("slow samples lack the STATS breach with trace %s: %+v", id, resp2.Slow)
	}
	// And the tracer's own counters surface through STATS.
	if resp2.Stats["trace_started"] == 0 || resp2.Stats["trace_kept_slow"] == 0 {
		t.Errorf("trace_* STATS keys missing or zero: %v", resp2.Stats)
	}
}

// TestTraceIDGatedByVersion: a v3 peer must see neither TraceID nor
// slow samples in its replies, even on a tracing server with breaches
// recorded — older strict decoders reject unknown fields.
func TestTraceIDGatedByVersion(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour,
		SlowOp: time.Nanosecond, TraceSample: 1})
	v3 := dialT(t, addr)
	if _, err := v3.Do(wire.Request{Op: wire.OpHello, Version: 3}); err != nil {
		t.Fatal(err)
	}
	resp, err := v3.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != 0 {
		t.Errorf("v3 reply carries trace ID %x", resp.TraceID)
	}
	if len(resp.Slow) != 0 {
		t.Errorf("v3 STATS reply carries slow samples: %+v", resp.Slow)
	}

	v4 := dialT(t, addr)
	if _, err := v4.Hello(); err != nil {
		t.Fatal(err)
	}
	resp4, err := v4.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if resp4.TraceID == 0 {
		t.Error("v4 reply on the same server carries no trace ID")
	}
}

// TestTraceDisabledByDefault: the Config zero value runs the untraced
// pipeline — no trace IDs, no trace_* STATS keys, no tracer.
func TestTraceDisabledByDefault(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Hour})
	if srv.trc != nil {
		t.Fatal("zero-value Config built a tracer")
	}
	cl := dialT(t, addr)
	if _, err := cl.Hello(); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != 0 {
		t.Errorf("untraced server returned trace ID %x", resp.TraceID)
	}
	if _, ok := resp.Stats["trace_started"]; ok {
		t.Errorf("untraced server reports trace_* keys: %v", resp.Stats)
	}
	srv.tick() // must not panic with a nil tracer
}

// TestTraceTickStructure drives hand ticks on a head-sample-everything
// server and asserts the tick trace's anatomy: a root, one "shard"
// span per registry shard spread across the sweep workers, and — the
// detailed (sampled) extras — per-session spans with the
// snapshot/tsdb.append/fanout/derive stage children.
func TestTraceTickStructure(t *testing.T) {
	srv, _ := startServer(t, Config{TickInterval: time.Hour, TickWorkers: 2,
		TraceSample: 1, TraceRing: 8})
	for i := 0; i < 3; i++ {
		created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate,
			Platform: "aix-power3", Events: []string{"PAPI_FP_INS"}, N: 8})
		if !created.OK {
			t.Fatal(created.Error)
		}
		if resp := srv.dispatch(nil, &wire.Request{Op: wire.OpStart,
			Session: created.Session}); !resp.OK {
			t.Fatal(resp.Error)
		}
	}
	srv.tick()

	var tick *tracing.TraceView
	for _, sum := range srv.trc.Summaries() {
		id, ok := tracing.ParseID(sum.ID)
		if !ok {
			t.Fatalf("unparseable summary ID %q", sum.ID)
		}
		if tr := srv.trc.Get(id); tr != nil && sum.Kind == "tick" {
			v := tr.View()
			tick = &v
			break
		}
	}
	if tick == nil {
		t.Fatal("no tick trace retained at sample 1/1")
	}
	names := spanNames(*tick)
	for _, want := range []string{"tick", "shard", "session", "snapshot",
		"tsdb.append", "fanout", "derive", "tsdb.sweep"} {
		if !names[want] {
			t.Errorf("tick trace lacks span %q; has %v", want, names)
		}
	}
	shards, sessions := 0, 0
	for _, sp := range tick.Spans {
		switch sp.Name {
		case "shard":
			shards++
		case "session":
			sessions++
		}
	}
	if want := len(srv.reg.shards); shards != want {
		t.Errorf("%d shard spans, want %d", shards, want)
	}
	if sessions != 3 {
		t.Errorf("%d session spans, want 3", sessions)
	}
}

// TestTracePublishStages: a traced PUBLISH records its pipeline stages
// (tsdb.append, fanout, derive) under the dispatch span.
func TestTracePublishStages(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Hour, TraceSample: 1})
	cl := dialT(t, addr)
	if _, err := cl.Hello(); err != nil {
		t.Fatal(err)
	}
	created, err := cl.Do(wire.Request{Op: wire.OpCreate, Workload: "none"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Do(wire.Request{Op: wire.OpPublish, Session: created.Session,
		Events: []string{"PAPI_TOT_INS"}, Values: []int64{42}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == 0 {
		t.Fatal("traced PUBLISH returned no trace ID")
	}
	tr := waitTrace(t, srv, resp.TraceID)
	names := spanNames(tr.View())
	for _, want := range []string{"PUBLISH", "dispatch", "tsdb.append", "fanout", "derive", "write"} {
		if !names[want] {
			t.Errorf("PUBLISH trace lacks span %q; has %v", want, names)
		}
	}
}

// waitTrace polls the ring for a trace the writer goroutine is still
// finishing, failing the test if it never lands.
func waitTrace(t *testing.T, srv *Server, id uint64) *tracing.Trace {
	t.Helper()
	for i := 0; i < 200; i++ {
		if tr := srv.trc.Get(id); tr != nil {
			return tr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("trace %s never retained", tracing.FormatID(id))
	return nil
}

// spanNames collects a view's span names into a set.
func spanNames(v tracing.TraceView) map[string]bool {
	names := make(map[string]bool, len(v.Spans))
	for _, sp := range v.Spans {
		names[sp.Name] = true
	}
	return names
}
