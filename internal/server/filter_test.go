package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/wire"
)

// pubSession creates a publish-only session with the given label and
// returns its ID.
func pubSession(t *testing.T, cl *Client, label string) uint64 {
	t.Helper()
	created, err := cl.Do(wire.Request{Op: wire.OpCreate, Workload: "none", Label: label})
	if err != nil {
		t.Fatal(err)
	}
	return created.Session
}

// helloT performs the v4 handshake on a test client.
func helloT(t *testing.T, cl *Client) wire.Response {
	t.Helper()
	hello, err := cl.Hello()
	if err != nil {
		t.Fatal(err)
	}
	return hello
}

// TestSubscribeEventFilter: a subscriber that names events receives
// frames projected to just those events, while an unfiltered peer of
// the same session keeps the full stream.
func TestSubscribeEventFilter(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour})
	pub := dialT(t, addr)
	id := pubSession(t, pub, "filter-test")

	full := dialT(t, addr)
	helloT(t, full)
	if _, err := full.Do(wire.Request{Op: wire.OpSubscribe, Session: id}); err != nil {
		t.Fatal(err)
	}
	filtered := dialT(t, addr)
	helloT(t, filtered)
	if _, err := filtered.Do(wire.Request{Op: wire.OpSubscribe, Session: id,
		Events: []string{"c", "a"}}); err != nil {
		t.Fatal(err)
	}

	if _, err := pub.Do(wire.Request{Op: wire.OpPublish, Session: id,
		Events: []string{"a", "b", "c"}, Values: []int64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}

	got, err := full.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got.Events, []string{"a", "b", "c"}) || !slices.Equal(got.Values, []int64{1, 2, 3}) {
		t.Errorf("unfiltered frame %v=%v, want full [a b c]=[1 2 3]", got.Events, got.Values)
	}
	got, err = filtered.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Projection keeps session order, not filter order.
	if !slices.Equal(got.Events, []string{"a", "c"}) || !slices.Equal(got.Values, []int64{1, 3}) {
		t.Errorf("filtered frame %v=%v, want [a c]=[1 3]", got.Events, got.Values)
	}
}

// TestSubscribeWildcard: label globs and explicit ID lists select the
// matching sessions, the reply names them, and frames arrive only for
// the subscribed set.
func TestSubscribeWildcard(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour})
	pub := dialT(t, addr)
	app1 := pubSession(t, pub, "app-1")
	app2 := pubSession(t, pub, "app-2")
	other := pubSession(t, pub, "other")

	sub := dialT(t, addr)
	helloT(t, sub)
	resp, err := sub.Do(wire.Request{Op: wire.OpSubscribe, Labels: []string{"app-*"}})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(resp.Sessions, []uint64{app1, app2}) {
		t.Fatalf("wildcard matched %v, want [%d %d]", resp.Sessions, app1, app2)
	}

	for i, id := range []uint64{app1, other, app2} {
		if _, err := pub.Do(wire.Request{Op: wire.OpPublish, Session: id,
			Events: []string{"x"}, Values: []int64{int64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]int64{}
	for i := 0; i < 2; i++ {
		got, err := sub.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.Session == other {
			t.Fatalf("frame for unmatched session %d leaked through the wildcard", other)
		}
		seen[got.Session] = got.Values[0]
	}
	if seen[app1] != 0 || seen[app2] != 2 {
		t.Errorf("wildcard frames %v, want app1=0 app2=2", seen)
	}

	// Explicit ID list works the same way.
	byID := dialT(t, addr)
	helloT(t, byID)
	resp, err = byID.Do(wire.Request{Op: wire.OpSubscribe, Sessions: []uint64{app2}})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(resp.Sessions, []uint64{app2}) {
		t.Fatalf("ID-list subscribe matched %v, want [%d]", resp.Sessions, app2)
	}
}

// TestSubscribeValidation: every malformed or under-versioned
// SUBSCRIBE earns a loud ERROR and registers nothing.
func TestSubscribeValidation(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour})
	pub := dialT(t, addr)
	id := pubSession(t, pub, "val")

	cl := dialT(t, addr)
	helloT(t, cl)
	cases := []struct {
		name string
		req  wire.Request
		want string
	}{
		{"session plus list", wire.Request{Op: wire.OpSubscribe, Session: id,
			Sessions: []uint64{id}}, "leave session 0"},
		{"wildcard derive", wire.Request{Op: wire.OpSubscribe, Labels: []string{"val"},
			Derive: []string{"ipc"}}, "single-session"},
		{"bad glob", wire.Request{Op: wire.OpSubscribe, Labels: []string{"[x"}}, "glob"},
		{"no match", wire.Request{Op: wire.OpSubscribe, Labels: []string{"nothing-*"}}, "no live session"},
	}
	for _, tc := range cases {
		_, err := cl.Do(tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// A v3 peer asking for any v4 feature is refused before anything
	// registers.
	v3 := dialT(t, addr)
	if _, err := v3.Do(wire.Request{Op: wire.OpHello, Version: 3}); err != nil {
		t.Fatal(err)
	}
	for _, req := range []wire.Request{
		{Op: wire.OpSubscribe, Session: id, Delta: true},
		{Op: wire.OpSubscribe, Session: id, Events: []string{"x"}},
		{Op: wire.OpSubscribe, Labels: []string{"val"}},
	} {
		_, err := v3.Do(req)
		if err == nil || !strings.Contains(err.Error(), "protocol") {
			t.Errorf("v3 filtered subscribe: err %v, want protocol gate", err)
		}
	}
}

// TestDeltaKeyframeCadence runs a delta subscriber and an unfiltered
// subscriber side by side: keyframes appear on the configured cadence,
// deltas carry only changed counters, and the materialized delta
// stream is value-identical to the unfiltered stream at every seq.
func TestDeltaKeyframeCadence(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Hour, KeyframeEvery: 3})
	pub := dialT(t, addr)
	id := pubSession(t, pub, "cadence")

	plain := dialT(t, addr)
	helloT(t, plain)
	if _, err := plain.Do(wire.Request{Op: wire.OpSubscribe, Session: id}); err != nil {
		t.Fatal(err)
	}
	deltaCl := dialT(t, addr)
	helloT(t, deltaCl)
	if _, err := deltaCl.Do(wire.Request{Op: wire.OpSubscribe, Session: id, Delta: true}); err != nil {
		t.Fatal(err)
	}

	events := []string{"a", "b", "c", "d"}
	vals := []int64{10, 20, 30, 40}
	const rounds = 7
	for i := 0; i < rounds; i++ {
		vals[i%len(vals)] += int64(i + 1) // one counter moves per round
		if _, err := pub.Do(wire.Request{Op: wire.OpPublish, Session: id,
			Events: events, Values: vals}); err != nil {
			t.Fatal(err)
		}
	}

	// The unfiltered stream is ground truth per seq.
	truth := make(map[uint64][]int64, rounds)
	for i := 0; i < rounds; i++ {
		got, err := plain.Next()
		if err != nil {
			t.Fatal(err)
		}
		truth[got.Seq] = slices.Clone(got.Values)
	}

	var tracker wire.DeltaTracker
	var ops []string
	for i := 0; i < rounds; i++ {
		got, err := deltaCl.Next()
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, got.Op)
		if got.Op == wire.OpDelta {
			if len(got.Idx) == 0 || len(got.Idx) >= len(events) {
				t.Errorf("delta seq %d ships %d of %d counters; want only the changed subset",
					got.Seq, len(got.Idx), len(events))
			}
			if got.Base == 0 {
				t.Errorf("delta seq %d has no base keyframe seq", got.Seq)
			}
		}
		snap, err := tracker.Apply(got)
		if err != nil {
			t.Fatalf("frame %d (%s): %v", i, got.Op, err)
		}
		want, ok := truth[snap.Seq]
		if !ok {
			t.Fatalf("delta stream has seq %d the unfiltered stream never saw", snap.Seq)
		}
		if !slices.Equal(snap.Values, want) || !slices.Equal(snap.Events, events) {
			t.Errorf("seq %d materialized %v=%v, want %v=%v",
				snap.Seq, snap.Events, snap.Values, events, want)
		}
	}
	wantOps := []string{wire.OpSnapshot, wire.OpDelta, wire.OpDelta,
		wire.OpSnapshot, wire.OpDelta, wire.OpDelta, wire.OpSnapshot}
	if !slices.Equal(ops, wantOps) {
		t.Errorf("frame ops %v, want cadence %v", ops, wantOps)
	}
	st := srv.Stats()
	if st.Keyframes != 3 || st.DeltasSent != 4 {
		t.Errorf("stats keyframes=%d deltas=%d, want 3 and 4", st.Keyframes, st.DeltasSent)
	}
}

// TestDeltaResyncAfterQueueDrop drives the real publish → fanout →
// push path against a delta subscriber that never drains: the drop
// marks it for resync, and the next fan-out re-keys instead of
// shipping a delta the client could no longer anchor.
func TestDeltaResyncAfterQueueDrop(t *testing.T) {
	srv := New(Config{TickInterval: time.Hour, KeyframeEvery: 100})
	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate, Workload: "none"})
	if !created.OK {
		t.Fatal(created.Error)
	}
	sess, ok := srv.reg.get(created.Session)
	if !ok {
		t.Fatal("session not registered")
	}
	c := &conn{srv: srv, q: newWriteQueue(4)}
	c.version.Store(wire.MinProtocolFilter)
	sig, canon := filterSig(nil, true)
	stalled := &subscriber{c: c, ch: make(chan frame, 1), done: make(chan struct{}),
		events: canon, delta: true, sig: sig}
	stalled.needKey.Store(true)
	if _, err := sess.addSubscriber(stalled); err != nil {
		t.Fatal(err)
	}

	publish := func(v int64) {
		t.Helper()
		resp := srv.dispatch(nil, &wire.Request{Op: wire.OpPublish, Session: created.Session,
			Events: []string{"a", "b"}, Values: []int64{1, v}})
		if !resp.OK {
			t.Fatal(resp.Error)
		}
	}
	publish(2) // first frame: keyframe, queued cleanly
	if stalled.needKey.Load() {
		t.Fatal("clean keyframe delivery left needKey set")
	}
	publish(3) // delta; queue full → a frame drops → resync requested
	if !stalled.needKey.Load() {
		t.Fatal("dropped frame did not mark the delta subscriber for resync")
	}
	publish(4) // resync: the whole view re-keys

	var latest wire.Response
	if err := json.Unmarshal((<-stalled.ch).payload, &latest); err != nil {
		t.Fatalf("frame payload: %v", err)
	}
	if latest.Op != wire.OpSnapshot {
		t.Fatalf("post-drop frame is %s, want a keyframe SNAPSHOT", latest.Op)
	}
	if !slices.Equal(latest.Events, []string{"a", "b"}) || !slices.Equal(latest.Values, []int64{1, 4}) {
		t.Errorf("keyframe %v=%v, want [a b]=[1 4]", latest.Events, latest.Values)
	}
	st := srv.Stats()
	if st.Keyframes != 2 {
		t.Errorf("keyframes %d, want 2 (initial + resync)", st.Keyframes)
	}
	if st.DeltasSent != 1 {
		t.Errorf("deltas sent %d, want 1", st.DeltasSent)
	}
}

// TestDeltaResyncAfterMidFrameCut cuts a delta subscriber's connection
// mid-conversation via faultnet, redials, and re-subscribes: the fresh
// subscription's first frame must be a keyframe carrying the complete
// current state — a reconnecting client can never be left applying
// deltas against a baseline it lost with the old connection.
func TestDeltaResyncAfterMidFrameCut(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour, KeyframeEvery: 100})
	pub := dialT(t, addr)
	id := pubSession(t, pub, "cut")

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Sever the connection once the client has written its handshake
	// and subscribe plus a few bytes — the next request dies mid-frame.
	helloB, _ := wire.AppendFrame(nil, wire.CodecJSON, &wire.Request{Op: wire.OpHello, Version: wire.ProtocolVersion})
	subB, _ := wire.AppendFrame(nil, wire.CodecJSON, &wire.Request{Op: wire.OpSubscribe, Session: id, Delta: true})
	fc := faultnet.WrapConn(nc, faultnet.Faults{CutAfter: int64(len(helloB) + len(subB) + 3)})
	defer fc.Close()
	enc, dec := wire.NewEncoder(fc), wire.NewDecoder(fc)
	var resp wire.Response
	if err := enc.Encode(&wire.Request{Op: wire.OpHello, Version: wire.ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&resp); err != nil || !resp.OK {
		t.Fatalf("hello: %v %+v", err, resp)
	}
	if err := enc.Encode(&wire.Request{Op: wire.OpSubscribe, Session: id, Delta: true}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&resp); err != nil || !resp.OK {
		t.Fatalf("subscribe: %v %+v", err, resp)
	}

	var tracker wire.DeltaTracker
	publish := func(a, b int64) {
		t.Helper()
		if _, err := pub.Do(wire.Request{Op: wire.OpPublish, Session: id,
			Events: []string{"a", "b"}, Values: []int64{a, b}}); err != nil {
			t.Fatal(err)
		}
	}
	publish(1, 2) // keyframe
	publish(1, 3) // delta
	for i := 0; i < 2; i++ {
		if err := dec.Decode(&resp); err != nil {
			t.Fatalf("pre-cut frame %d: %v", i, err)
		}
		if _, err := tracker.Apply(resp); err != nil {
			t.Fatalf("pre-cut frame %d: %v", i, err)
		}
	}
	// This write crosses CutAfter: the conn is severed mid-frame.
	if err := enc.Encode(&wire.Request{Op: wire.OpBye}); err == nil {
		if err := dec.Decode(&resp); err == nil {
			t.Fatal("connection survived the scheduled cut")
		}
	}

	// Redial; a fresh delta subscription must open with a keyframe.
	publish(7, 8) // state moved while we were gone
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	enc2, dec2 := wire.NewEncoder(nc2), wire.NewDecoder(nc2)
	if err := enc2.Encode(&wire.Request{Op: wire.OpHello, Version: wire.ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	if err := dec2.Decode(&resp); err != nil || !resp.OK {
		t.Fatalf("redial hello: %v %+v", err, resp)
	}
	if err := enc2.Encode(&wire.Request{Op: wire.OpSubscribe, Session: id, Delta: true}); err != nil {
		t.Fatal(err)
	}
	if err := dec2.Decode(&resp); err != nil || !resp.OK {
		t.Fatalf("redial subscribe: %v %+v", err, resp)
	}
	publish(7, 9)
	if err := dec2.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Op != wire.OpSnapshot {
		t.Fatalf("first post-redial frame is %s, want a keyframe SNAPSHOT", resp.Op)
	}
	if !slices.Equal(resp.Values, []int64{7, 9}) {
		t.Errorf("post-redial keyframe values %v, want [7 9]", resp.Values)
	}
}

// TestReconnClientReplaysDeltaSub cuts the server side of a
// ReconnClient's connection mid-stream: the client redials, replays
// its recorded delta subscription, and the stream re-anchors with a
// keyframe — the DeltaTracker over the whole received sequence
// converges back to the live values.
func TestReconnClientReplaysDeltaSub(t *testing.T) {
	srv := New(Config{TickInterval: time.Hour, KeyframeEvery: 50})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Conn 0 is the publisher; conn 1 (the subscriber's first) is cut
	// after a few hundred bytes of server writes; later conns are clean.
	fln := faultnet.Wrap(ln, func(i int, nc net.Conn) faultnet.Faults {
		if i == 1 {
			return faultnet.Faults{CutAfter: 400}
		}
		return faultnet.Faults{}
	})
	addr := srv.Serve(fln).String()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	pub := dialT(t, addr)
	id := pubSession(t, pub, "reconn")
	if _, err := pub.Do(wire.Request{Op: wire.OpPublish, Session: id,
		Events: []string{"a", "b"}, Values: []int64{1, 1}}); err != nil {
		t.Fatal(err)
	}

	rc, err := DialReconn(addr, RetryConfig{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var mu sync.Mutex
	var frames []wire.Response
	collect := func(resp wire.Response) {
		mu.Lock()
		frames = append(frames, resp)
		mu.Unlock()
	}
	rc.OnSnapshot, rc.OnDelta = collect, collect
	if _, err := rc.SubscribeWith(SubOptions{Session: id, Delta: true}); err != nil {
		t.Fatal(err)
	}

	// Publish and pump until the cut has happened and the stream has
	// recovered past it. STATS is replayable, so the Do that trips over
	// the cut reconnects (replaying the subscription) and still answers.
	val := int64(1)
	deadline := time.Now().Add(10 * time.Second)
	for rc.Reconnects == 0 || val < 40 {
		if time.Now().After(deadline) {
			t.Fatalf("no reconnect after %d publishes", val)
		}
		val++
		if _, err := pub.Do(wire.Request{Op: wire.OpPublish, Session: id,
			Events: []string{"a", "b"}, Values: []int64{1, val}}); err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Do(wire.Request{Op: wire.OpStats}); err != nil {
			t.Fatalf("pump: %v", err)
		}
	}

	// Drain until the materialized stream reaches the final value.
	var tracker wire.DeltaTracker
	var last []int64
	skipped := 0
	for time.Now().Before(deadline) {
		mu.Lock()
		batch := frames
		frames = nil
		mu.Unlock()
		for _, f := range batch {
			snap, err := tracker.Apply(f)
			if err != nil {
				// A delta that chains from a keyframe lost to the cut is
				// skippable by design; the replayed subscription's
				// keyframe re-anchors.
				skipped++
				continue
			}
			last = slices.Clone(snap.Values)
		}
		if slices.Equal(last, []int64{1, val}) {
			break
		}
		if _, err := rc.Do(wire.Request{Op: wire.OpStats}); err != nil {
			t.Fatalf("drain pump: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rc.Reconnects == 0 {
		t.Fatal("the cut never tripped a reconnect")
	}
	if !slices.Equal(last, []int64{1, val}) {
		t.Fatalf("materialized stream ended at %v, want [1 %d] (skipped %d)", last, val, skipped)
	}
}

// TestMixedVersionUnfilteredStream pins backward compatibility at the
// byte level: a v2 JSON peer subscribed without filters receives
// exactly the SNAPSHOT lines older servers sent — no DELTA frames, no
// idx/base fields — and any v4 feature it tries is refused.
func TestMixedVersionUnfilteredStream(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour, KeyframeEvery: 2})
	pub := dialT(t, addr)
	id := pubSession(t, pub, "mixed")

	// A v4 delta subscriber runs alongside, so the session is serving
	// delta views while the v2 stream must stay untouched.
	deltaCl := dialT(t, addr)
	helloT(t, deltaCl)
	if _, err := deltaCl.Do(wire.Request{Op: wire.OpSubscribe, Session: id, Delta: true}); err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	send := func(req wire.Request) string {
		t.Helper()
		buf, err := wire.AppendFrame(nil, wire.CodecJSON, &req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(buf); err != nil {
			t.Fatal(err)
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return line
	}
	if line := send(wire.Request{Op: wire.OpHello, Version: 2}); !strings.Contains(line, `"ok":true`) {
		t.Fatalf("v2 hello refused: %s", line)
	}
	if line := send(wire.Request{Op: wire.OpSubscribe, Session: id, Delta: true}); !strings.Contains(line, "protocol") {
		t.Fatalf("v2 delta subscribe not version-gated: %s", line)
	}
	if line := send(wire.Request{Op: wire.OpSubscribe, Session: id}); !strings.Contains(line, `"ok":true`) {
		t.Fatalf("v2 plain subscribe refused: %s", line)
	}

	for i := int64(1); i <= 4; i++ {
		if _, err := pub.Do(wire.Request{Op: wire.OpPublish, Session: id,
			Events: []string{"a", "b"}, Values: []int64{i, i * 10}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(line, `"op":"SNAPSHOT"`) {
			t.Errorf("v2 stream line %d is not a SNAPSHOT: %s", i, line)
		}
		for _, leak := range []string{`"idx"`, `"base"`, `"DELTA"`} {
			if strings.Contains(line, leak) {
				t.Errorf("v2 stream line leaks v4 field %s: %s", leak, line)
			}
		}
		var resp wire.Response
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(resp.Events, []string{"a", "b"}) || len(resp.Values) != 2 {
			t.Errorf("v2 frame %d not the full snapshot: %v=%v", i, resp.Events, resp.Values)
		}
	}
}

// TestFanoutEncodeFailure pins the fixed fan-out failure path: an
// encode failure is attempted and logged once per codec per tick, the
// failure is counted, and every subscriber on that codec records a
// dropped frame instead of silently losing it.
func TestFanoutEncodeFailure(t *testing.T) {
	attempts := 0
	old := appendFrameFn
	appendFrameFn = func(dst []byte, codec wire.Codec, v any) ([]byte, error) {
		attempts++
		return nil, errors.New("boom")
	}
	defer func() { appendFrameFn = old }()

	srv := New(Config{TickInterval: time.Hour})
	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate, Workload: "none"})
	if !created.OK {
		t.Fatal(created.Error)
	}
	sess, ok := srv.reg.get(created.Session)
	if !ok {
		t.Fatal("session not registered")
	}
	c := &conn{srv: srv, q: newWriteQueue(4)}
	c.version.Store(wire.MinProtocolFilter)
	for i := 0; i < 2; i++ {
		sub := &subscriber{c: c, ch: make(chan frame, 4), done: make(chan struct{})}
		if _, err := sess.addSubscriber(sub); err != nil {
			t.Fatal(err)
		}
	}
	resp := srv.dispatch(nil, &wire.Request{Op: wire.OpPublish, Session: created.Session,
		Events: []string{"a"}, Values: []int64{1}})
	if !resp.OK {
		t.Fatal(resp.Error)
	}
	if attempts != 1 {
		t.Errorf("%d encode attempts, want 1 (failure negative-cached per tick)", attempts)
	}
	st := srv.Stats()
	if st.EncodeFailures != 1 {
		t.Errorf("encode failures %d, want 1", st.EncodeFailures)
	}
	if st.SnapshotsSent != 0 || st.SnapshotsDropped != 2 {
		t.Errorf("sent=%d dropped=%d, want 0 sent and both subscribers' drops counted",
			st.SnapshotsSent, st.SnapshotsDropped)
	}
}

// TestQueryDeriveNoHistory is the regression test for the nil-history
// panic: a derive QUERY against a server running with history disabled
// must answer with a wire ERROR naming the configuration, not crash.
func TestQueryDeriveNoHistory(t *testing.T) {
	srv := New(Config{TickInterval: time.Hour, TSDBMaxBytes: -1})
	req := &wire.Request{Op: wire.OpQuery, Session: 1, Derive: []string{"ipc"},
		From: 0, To: 100}
	for name, resp := range map[string]wire.Response{
		"dispatch":     srv.dispatch(nil, req),
		"queryDerived": srv.queryDerived(nil, req),
	} {
		if resp.OK {
			t.Errorf("%s: derive QUERY with history disabled succeeded", name)
		}
		if !strings.Contains(resp.Error, "history disabled") {
			t.Errorf("%s: error %q does not name the disabled history", name, resp.Error)
		}
	}
}

// TestDerivedCountersDistinct pins the fixed DERIVED accounting:
// derived frames land in derived_sent, never inflating the snapshot
// counters.
func TestDerivedCountersDistinct(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Hour})
	pub := dialT(t, addr)
	id := pubSession(t, pub, "derived")
	publish := func(ins, cyc int64) {
		t.Helper()
		if _, err := pub.Do(wire.Request{Op: wire.OpPublish, Session: id,
			Events: []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"}, Values: []int64{ins, cyc}}); err != nil {
			t.Fatal(err)
		}
	}
	publish(100, 100) // names the events so the group resolves

	sub := dialT(t, addr)
	helloT(t, sub)
	if _, err := sub.Do(wire.Request{Op: wire.OpSubscribe, Session: id,
		Derive: []string{"ipc"}}); err != nil {
		t.Fatal(err)
	}
	publish(300, 200) // primes the delta-based engine
	publish(700, 400) // second sample after priming: the group evaluates

	st := srv.Stats()
	if st.DerivedSent == 0 {
		t.Fatal("no DERIVED frame counted in derived_sent")
	}
	if st.SnapshotsSent != 2 {
		t.Errorf("snapshots_sent %d, want 2 (DERIVED frames must not inflate it)", st.SnapshotsSent)
	}
	if st.DerivedDropped != 0 || st.SnapshotsDropped != 0 {
		t.Errorf("dropped counters derived=%d snap=%d, want 0", st.DerivedDropped, st.SnapshotsDropped)
	}
	resp, err := sub.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"derived_sent", "deltas_sent", "keyframes_sent", "encode_failures"} {
		if _, ok := resp.Stats[key]; !ok {
			t.Errorf("STATS reply missing %q", key)
		}
	}
	if fmt.Sprint(resp.Stats["derived_sent"]) != fmt.Sprint(st.DerivedSent) {
		t.Errorf("STATS derived_sent %d != Stats() %d", resp.Stats["derived_sent"], st.DerivedSent)
	}
}
