package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry/tracing"
	"repro/internal/wire"
)

// BenchmarkDerivedFanout measures the per-tick cost the derived-metric
// path adds for one session with two groups (ipc + l2miss, four
// metrics) fanning out to 4 v3 subscribers: delta computation, four
// formula evaluations, threshold-rule checks, and the encode-once
// DERIVED frame shared across subscriber queues. This is the number
// behind the "evaluation is allocation-bounded" claim — steady state
// should allocate only the one encoded frame per tick.
func BenchmarkDerivedFanout(b *testing.B) {
	srv := New(Config{
		TickInterval: time.Hour, // driven by hand below
		Groups:       []string{"ipc", "l2miss"},
		DeriveRules:  []string{"ipc<0.1:3"},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	events := []string{"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_L2_TCM", "PAPI_L2_TCA"}
	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate,
		Platform: "aix-power3", Events: events, Workload: "none"})
	if !created.OK {
		b.Fatal(created.Error)
	}
	sess, ok := srv.reg.get(created.Session)
	if !ok {
		b.Fatal("session vanished")
	}
	// Detached v3 subscribers: push fills their queues and then drops
	// oldest — the benchmark measures evaluation and encode, not socket
	// drain.
	c := &conn{srv: srv, q: newWriteQueue(4)}
	c.version.Store(3)
	subs := make([]*subscriber, 4)
	for i := range subs {
		subs[i] = &subscriber{c: c, ch: make(chan frame, 1), done: make(chan struct{})}
	}
	vals := []int64{0, 0, 0, 0}
	snap := wire.Response{Op: wire.OpSnapshot, OK: true, Session: created.Session,
		Events: events, Values: vals}
	ts := int64(1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0] += 50_000
		vals[1] += 100_000
		vals[2] += 700
		vals[3] += 9_000
		ts += 2_000
		snap.Seq++
		srv.fanoutDerived(nil, tracing.NoSpan, sess, snap, subs, ts)
	}
}

// BenchmarkServerFanoutInterest measures what one fan-out tick costs —
// and ships — per subscriber under the v4 subscription shapes, for 32
// publish sessions with 32 counters each and 64 subscribers:
//
//   - broadcast: every subscriber follows every session unfiltered,
//     the pre-v4 dashboard shape — 32 full frames per subscriber per
//     tick;
//   - interest: each subscriber follows exactly one session — the
//     filtered fan-out's headline win, ~32x fewer bytes/sub-tick;
//   - events: every session followed, projected to 4 of 32 counters;
//   - delta: one session each in delta mode with 6 of 32 counters
//     changing per tick — delta frames ship only the changed subset
//     between keyframes.
//
// bytes/sub-tick is the custom metric the BENCH_server.json baseline
// tracks; frames are drained synchronously each iteration so nothing
// drops and the byte count is exact.
func BenchmarkServerFanoutInterest(b *testing.B) {
	const nSessions, nSubs, nEvents, nChanged = 32, 64, 32, 6
	events := make([]string, nEvents)
	for i := range events {
		events[i] = fmt.Sprintf("EV_%02d", i)
	}
	modes := []struct {
		name       string
		perSession bool     // subscriber follows one session, not all
		filter     []string // event filter
		delta      bool
	}{
		{name: "broadcast"},
		{name: "interest", perSession: true},
		{name: "events", filter: events[:4]},
		{name: "delta", perSession: true, delta: true},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			srv := New(Config{TickInterval: time.Hour, TSDBMaxBytes: -1, KeyframeEvery: 10})
			sessions := make([]*session, nSessions)
			ids := make([]uint64, nSessions)
			for i := range sessions {
				created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate, Workload: "none"})
				if !created.OK {
					b.Fatal(created.Error)
				}
				ids[i] = created.Session
				sess, ok := srv.reg.get(created.Session)
				if !ok {
					b.Fatal("session vanished")
				}
				sessions[i] = sess
			}
			c := &conn{srv: srv, q: newWriteQueue(4)}
			c.version.Store(wire.MinProtocolFilter)
			sig, canon := filterSig(mode.filter, mode.delta)
			subs := make([]*subscriber, nSubs)
			for i := range subs {
				sub := &subscriber{c: c, ch: make(chan frame, 2*nSessions),
					done: make(chan struct{}), events: canon, delta: mode.delta, sig: sig}
				if mode.delta {
					sub.needKey.Store(true)
				}
				subs[i] = sub
				if mode.perSession {
					if _, err := sessions[i%nSessions].addSubscriber(sub); err != nil {
						b.Fatal(err)
					}
					continue
				}
				for _, sess := range sessions {
					if _, err := sess.addSubscriber(sub); err != nil {
						b.Fatal(err)
					}
				}
			}
			vals := make([]int64, nEvents)
			var bytes int64
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for i := 0; i < nChanged; i++ {
					vals[(n+i*5)%nEvents] += int64(n + 1)
				}
				for i := range sessions {
					if resp := srv.dispatch(nil, &wire.Request{Op: wire.OpPublish,
						Session: ids[i], Events: events, Values: vals}); !resp.OK {
						b.Fatal(resp.Error)
					}
				}
				for _, sub := range subs {
				drain:
					for {
						select {
						case f := <-sub.ch:
							bytes += int64(len(f.payload))
							f.release()
						default:
							break drain
						}
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(bytes)/float64(nSubs)/float64(b.N), "bytes/sub-tick")
			st := srv.Stats()
			if st.SnapshotsDropped+st.DeltasDropped > 0 {
				b.Fatalf("%d frames dropped; bytes/sub-tick would undercount",
					st.SnapshotsDropped+st.DeltasDropped)
			}
		})
	}
}

// BenchmarkServerQuery measures QUERY round-trip latency through the
// full TCP + JSON path at 1, 8 and 64 concurrent queriers against a
// store preloaded with 50k ticks of two-event history.
func BenchmarkServerQuery(b *testing.B) {
	clock := int64(1_000_000)
	srv := New(Config{
		TickInterval:  time.Hour, // no background ticks; history preloaded below
		TSDBRetention: -1,
		now:           func() int64 { return clock },
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate, Workload: "none"})
	if !created.OK {
		b.Fatal(created.Error)
	}
	id := created.Session
	events := []string{"PAPI_TOT_CYC", "PAPI_FP_OPS"}
	vals := []int64{0, 0}
	for i := 0; i < 50_000; i++ {
		clock += 10_000
		vals[0] += 1_000_000
		vals[1] += 250_000
		if resp := srv.dispatch(nil, &wire.Request{Op: wire.OpPublish, Session: id,
			Events: events, Values: vals}); !resp.OK {
			b.Fatal(resp.Error)
		}
	}
	from, to := int64(1_000_000), clock+1

	for _, nq := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("queriers-%d", nq), func(b *testing.B) {
			clients := make([]*Client, nq)
			for i := range clients {
				cl, err := Dial(addr.String())
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				clients[i] = cl
			}
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for _, cl := range clients {
				wg.Add(1)
				go func(cl *Client) {
					defer wg.Done()
					for {
						if next.Add(1) > int64(b.N) {
							return
						}
						resp, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
							From: from, To: to, Step: 60_000_000})
						if err != nil {
							b.Error(err)
							return
						}
						if len(resp.Series) != 2 {
							b.Errorf("%d series", len(resp.Series))
							return
						}
					}
				}(cl)
			}
			wg.Wait()
		})
	}
}

// BenchmarkTickTraced is BenchmarkTickParallel's 256-session sweep
// shape run as a pair: flight recorder off versus on at papid's
// default 1/64 sampling. The delta between the two sub-benchmarks is
// the recorder's whole per-tick cost — coarse shard spans and the
// Start/Finish bookkeeping every tick, detailed per-session stage
// spans on the head-sampled ones — and it is the number the 25% bench
// gate (tools/bench.sh compare) holds the tracing work to.
func BenchmarkTickTraced(b *testing.B) {
	const nSessions = 256
	events := []string{"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_L2_TCM", "PAPI_L2_TCA"}
	for _, mode := range []struct {
		name   string
		sample int
	}{
		{"recorder=off", 0},
		{"recorder=1in64", 64},
	} {
		b.Run(mode.name, func(b *testing.B) {
			srv := New(Config{
				TickInterval: time.Hour, // ticks driven by hand below
				TickWorkers:  4,
				TraceSample:  mode.sample,
			})
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()
			for i := 0; i < nSessions; i++ {
				created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate,
					Platform: "aix-power3", Events: events, N: 8})
				if !created.OK {
					b.Fatal(created.Error)
				}
				if resp := srv.dispatch(nil, &wire.Request{Op: wire.OpStart,
					Session: created.Session}); !resp.OK {
					b.Fatal(resp.Error)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				srv.tick()
			}
		})
	}
}

// BenchmarkTickParallel measures one full tick sweep — snapshot,
// history append, derive, encode, fan-out for every session — over 256
// counting sessions at sweep widths 1, 2, 4 and 8 (Config.TickWorkers).
// Sessions run on aix-power3 with a 4-event set; the issue's nominal
// 32-counter shape is not representable here — hwsim's richest
// platforms expose at most 8 physical counters (and power3 constrains
// a running set to one event group) — so the benchmark uses the widest
// allocatable set that exercises the same per-session pipeline.
// Workers above GOMAXPROCS cannot show wall-clock wins (on a 1-CPU
// host every width degenerates to time-sliced serial execution); what
// this benchmark certifies everywhere is that the parallel sweep adds
// no per-width cost cliff, and on multi-core hosts it is the speedup
// measurement the tuning section of the README refers to.
func BenchmarkTickParallel(b *testing.B) {
	const nSessions = 256
	events := []string{"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_L2_TCM", "PAPI_L2_TCA"}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv := New(Config{
				TickInterval: time.Hour, // ticks driven by hand below
				TickWorkers:  workers,
			})
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()
			for i := 0; i < nSessions; i++ {
				created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate,
					Platform: "aix-power3", Events: events, N: 8})
				if !created.OK {
					b.Fatal(created.Error)
				}
				if resp := srv.dispatch(nil, &wire.Request{Op: wire.OpStart,
					Session: created.Session}); !resp.OK {
					b.Fatal(resp.Error)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				srv.tick()
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(nSessions)*float64(b.N)/secs, "sessions/s")
			}
		})
	}
}
