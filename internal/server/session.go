package server

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/derive"
	"repro/internal/wire"
	"repro/papi"
	"repro/workload"
)

// session is one client-created measurement: a private simulated
// System/Thread/EventSet on a chosen platform, an optional workload the
// tick loop advances while the session runs, and the set of subscribers
// receiving its snapshots. All fields behind mu — the papi stack is not
// goroutine-safe, so every touch of sys/th/es is serialized here.
type session struct {
	id       uint64
	platform string
	// label is the client-chosen name from CREATE_SESSION, matched by
	// wildcard SUBSCRIBE label globs. Immutable after creation.
	label string

	// fanMu guards views — the per-filter-signature delta/projection
	// state (see filter.go). It is separate from mu and never held
	// together with it from the fan-out side: fanout runs with mu
	// already released, and fanMu serializes concurrent fan-outs of
	// this session (tick loop vs PUBLISH handlers).
	fanMu sync.Mutex
	views map[string]*viewState

	mu      sync.Mutex
	sys     *papi.System
	th      *papi.Thread
	es      *papi.EventSet
	names   []string // event names, parallel to the EventSet's add order
	prog    workload.Program
	running bool
	closed  bool
	seq     uint64
	last    []int64 // latest snapshot: live read, publish, or final stop
	subs    map[*subscriber]struct{}
	// subsList is the copy-on-write flattening of subs, rebuilt on
	// every membership change: snapshot() hands it out every tick, so
	// the per-tick cost is a slice read instead of a map walk and an
	// allocation. Frames encoded outside mu may still hold the old
	// slice — rebuilds allocate fresh, never mutate in place.
	subsList []*subscriber

	// deriveGroups are the performance groups SUBSCRIBE registered on
	// this session; tickGroups caches their union with the server-default
	// groups the event set covers (rebuilt when either input changes, so
	// the per-tick path hands the engine a stable slice).
	deriveGroups []string
	tickGroups   []string
	tickGroupsOK bool
}

// addEvents resolves and adds the named events, then memoizes the
// grown set's allocation in the server's cache. The EventSet has
// already validated allocatability during Add; the cache entry is what
// lets the *next* identical session skip the matching solve. It
// returns the session's full event-name list, copied under the lock.
func (sess *session) addEvents(srv *Server, names []string) ([]string, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return nil, errSessionClosed
	}
	if len(names) > 0 {
		// Copy-on-write: snapshot frames encoded outside the lock hold
		// references to the old slice, so grow into a fresh array
		// instead of appending in place.
		grown := make([]string, len(sess.names), len(sess.names)+len(names))
		copy(grown, sess.names)
		sess.names = grown
	}
	for _, name := range names {
		ev, ok := papi.ResolveEvent(sess.sys, name)
		if !ok {
			return nil, fmt.Errorf("unknown event %q on %s", name, sess.platform)
		}
		if err := sess.es.Add(ev); err != nil {
			return nil, err
		}
		sess.names = append(sess.names, name)
		sess.tickGroupsOK = false // a grown event set may cover more groups
	}
	if len(sess.names) > 0 {
		if _, err := srv.cache.assign(sess.sys.Arch(), sess.es.NativeCodes()); err != nil {
			return nil, err
		}
	}
	return append([]string(nil), sess.names...), nil
}

// start transitions the session to counting.
func (sess *session) start() error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return errSessionClosed
	}
	if sess.running {
		return fmt.Errorf("session %d already started", sess.id)
	}
	if err := sess.es.Start(); err != nil {
		return err
	}
	sess.running = true
	return nil
}

// read returns the current counter values: a live read while running,
// the last stored snapshot (final stop or publish) otherwise.
func (sess *session) read() (wire.Response, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return wire.Response{}, errSessionClosed
	}
	if sess.running {
		vals := make([]int64, len(sess.names))
		if err := sess.es.Read(vals); err != nil {
			return wire.Response{}, err
		}
		sess.last = vals
		return wire.Response{OK: true, Session: sess.id, Events: sess.names,
			Values: vals, RealUsec: sess.th.RealUsec(), Seq: sess.seq, Source: "live"}, nil
	}
	if sess.last == nil {
		return wire.Response{}, fmt.Errorf("session %d has no counter values yet", sess.id)
	}
	return wire.Response{OK: true, Session: sess.id, Events: sess.names,
		Values: sess.last, Seq: sess.seq, Source: "last"}, nil
}

// stop halts counting and returns the event names and final values.
func (sess *session) stop() ([]string, []int64, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return nil, nil, errSessionClosed
	}
	if !sess.running {
		return nil, nil, fmt.Errorf("session %d is not started", sess.id)
	}
	final := make([]int64, len(sess.names))
	if err := sess.es.Stop(final); err != nil {
		return nil, nil, err
	}
	sess.running = false
	sess.last = final
	return append([]string(nil), sess.names...), final, nil
}

// publish stores an externally measured snapshot (papirun -serve) and
// returns it as a fan-out frame plus the subscribers to push it to.
// Publishing is only legal on sessions papid is not driving itself.
func (sess *session) publish(names []string, values []int64) (wire.Response, []*subscriber, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return wire.Response{}, nil, errSessionClosed
	}
	if sess.running {
		return wire.Response{}, nil, fmt.Errorf("session %d is counting; cannot publish external values", sess.id)
	}
	// Validate fully before touching session state: a rejected publish
	// must not leave renamed events behind.
	if len(names) > 0 {
		if len(values) != len(names) {
			return wire.Response{}, nil, fmt.Errorf("publish: %d values for %d events", len(values), len(names))
		}
		if sess.es.NumEvents() > 0 {
			return wire.Response{}, nil, fmt.Errorf("session %d counts its own events; publish values without renaming them", sess.id)
		}
		sess.names = names
		sess.tickGroupsOK = false
	} else if len(values) != len(sess.names) {
		return wire.Response{}, nil, fmt.Errorf("publish: %d values for %d events", len(values), len(sess.names))
	}
	sess.seq++
	sess.last = values
	resp := wire.Response{Op: wire.OpSnapshot, OK: true, Session: sess.id,
		Events: sess.names, Values: values, Seq: sess.seq, Source: "published"}
	return resp, sess.subscribers(), nil
}

// snapshot is the coalesced per-tick read: advance the workload one
// chunk, read the counters once, and return the frame plus every
// subscriber it fans out to. ok is false when there is nothing to do.
func (sess *session) snapshot() (resp wire.Response, subs []*subscriber, ok bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed || !sess.running {
		return wire.Response{}, nil, false
	}
	if sess.prog != nil {
		sess.prog.Reset()
		sess.th.Run(sess.prog)
	}
	vals := make([]int64, len(sess.names))
	if err := sess.es.Read(vals); err != nil {
		return wire.Response{}, nil, false
	}
	sess.seq++
	sess.last = vals
	resp = wire.Response{Op: wire.OpSnapshot, OK: true, Session: sess.id,
		Events: sess.names, Values: vals, RealUsec: sess.th.RealUsec(),
		Seq: sess.seq, Source: "live"}
	return resp, sess.subscribers(), true
}

// subscribers returns the current subscriber list; callers hold mu.
// The slice is the copy-on-write subsList — safe to use after mu is
// released, never mutated, only replaced.
func (sess *session) subscribers() []*subscriber {
	return sess.subsList
}

// rebuildSubsLocked reflattens subs into a fresh subsList; callers
// hold mu.
func (sess *session) rebuildSubsLocked() {
	if len(sess.subs) == 0 {
		sess.subsList = nil
		return
	}
	subs := make([]*subscriber, 0, len(sess.subs))
	for sub := range sess.subs {
		subs = append(subs, sub)
	}
	sess.subsList = subs
}

func (sess *session) addSubscriber(sub *subscriber) ([]string, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return nil, errSessionClosed
	}
	sess.subs[sub] = struct{}{}
	sess.rebuildSubsLocked()
	return append([]string(nil), sess.names...), nil
}

// registerDerive validates and records performance groups named in a
// SUBSCRIBE request's Derive field. Each must resolve in the registry,
// and every event its formulas reference must be in the session's
// event set — a formula over events the session does not count earns a
// wire ERROR here, never an empty or silently incomplete stream.
func (sess *session) registerDerive(reg *derive.Registry, names []string) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return errSessionClosed
	}
	groups, err := reg.Resolve(names)
	if err != nil {
		return err
	}
	for _, g := range groups {
		for _, ev := range g.Events() {
			if !slices.Contains(sess.names, ev) {
				return fmt.Errorf("group %s needs event %s, which session %d does not count (have %v)",
					g.Name, ev, sess.id, sess.names)
			}
		}
	}
	for _, n := range names {
		if !slices.Contains(sess.deriveGroups, n) {
			sess.deriveGroups = append(sess.deriveGroups, n)
		}
	}
	sess.tickGroupsOK = false
	return nil
}

// derivedGroups returns the groups to evaluate on this session each
// tick: the SUBSCRIBE-registered set plus every server-default group
// whose event requirements the session's event set covers. Defaults a
// session cannot feed are skipped, not errors — `papid -groups ipc`
// must not break a session counting only FP events. The result is
// cached (and its identity stable) until the event set or the
// registration set changes, so the engine's layout comparison sees an
// unchanged slice on the steady-state path.
func (sess *session) derivedGroups(defaults []*derive.Group) []string {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if !sess.tickGroupsOK {
		// Build into a fresh slice, never in place: a concurrent
		// evaluation may still be reading the previous one outside this
		// lock (e.g. two PUBLISH paths racing a registration).
		groups := append(make([]string, 0, len(sess.deriveGroups)+len(defaults)),
			sess.deriveGroups...)
		for _, g := range defaults {
			if slices.Contains(groups, g.Name) {
				continue
			}
			covered := true
			for _, ev := range g.Events() {
				if !slices.Contains(sess.names, ev) {
					covered = false
					break
				}
			}
			if covered {
				groups = append(groups, g.Name)
			}
		}
		sess.tickGroups = groups
		sess.tickGroupsOK = true
	}
	return sess.tickGroups
}

func (sess *session) removeSubscriber(sub *subscriber) {
	sess.mu.Lock()
	delete(sess.subs, sub)
	sess.rebuildSubsLocked()
	shared := false
	if sub.sig != "" {
		for other := range sess.subs {
			if other.sig == sub.sig {
				shared = true
				break
			}
		}
	}
	sess.mu.Unlock()
	// Prune the filter view when its last subscriber leaves, so a churn
	// of distinct filters cannot grow the view map without bound. A
	// racing re-subscribe with the same signature just re-primes: its
	// first frame is a keyframe either way.
	if sub.sig != "" && !shared {
		sess.fanMu.Lock()
		delete(sess.views, sub.sig)
		sess.fanMu.Unlock()
	}
}

// close drains the session: folds final counts if it was running,
// detaches subscribers, and marks it unusable. It returns the final
// values, if any. close is idempotent.
func (sess *session) close() []int64 {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return sess.last
	}
	sess.closed = true
	if sess.running {
		final := make([]int64, len(sess.names))
		if err := sess.es.Stop(final); err == nil {
			sess.last = final
		}
		sess.running = false
	}
	sess.subs = make(map[*subscriber]struct{})
	sess.subsList = nil
	return sess.last
}

// registry is the sharded session table: sessions hash to one of N
// mutex-guarded shards by ID, so thousands of concurrent sessions
// contend on 1/N of a lock instead of serializing on one.
type registry struct {
	shards []regShard
}

type regShard struct {
	mu sync.RWMutex
	m  map[uint64]*session
}

func newRegistry(shards int) *registry {
	if shards <= 0 {
		shards = 16
	}
	r := &registry{shards: make([]regShard, shards)}
	for i := range r.shards {
		r.shards[i].m = make(map[uint64]*session)
	}
	return r
}

// shardFor picks the shard by Fibonacci-hashing the session ID —
// sequential IDs spread across shards instead of clustering.
func (r *registry) shardFor(id uint64) *regShard {
	h := (id * 0x9e3779b97f4a7c15) >> 32
	return &r.shards[h%uint64(len(r.shards))]
}

func (r *registry) put(sess *session) {
	sh := r.shardFor(sess.id)
	sh.mu.Lock()
	sh.m[sess.id] = sess
	sh.mu.Unlock()
}

func (r *registry) get(id uint64) (*session, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	sess, ok := sh.m[id]
	sh.mu.RUnlock()
	return sess, ok
}

func (r *registry) remove(id uint64) (*session, bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	sess, ok := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	return sess, ok
}

func (r *registry) count() int {
	n := 0
	for i := range r.shards {
		r.shards[i].mu.RLock()
		n += len(r.shards[i].m)
		r.shards[i].mu.RUnlock()
	}
	return n
}

// forEach visits every session. The per-shard lock is released before
// the callback runs, so callbacks may take session locks freely.
func (r *registry) forEach(f func(*session)) {
	for i := range r.shards {
		r.sweepShard(i, f)
	}
}

// sweepShard visits every session of one shard — the unit of work the
// parallel tick sweep claims (tick.go). The shard lock is released
// before any callback runs, same contract as forEach; distinct shards
// may be swept concurrently, and a session belongs to exactly one
// shard, so one sweep visits it exactly once. It reports how many
// sessions it visited, which the tick's flight-recorder shard span
// records.
func (r *registry) sweepShard(i int, f func(*session)) int {
	sh := &r.shards[i]
	sh.mu.RLock()
	batch := make([]*session, 0, len(sh.m))
	for _, sess := range sh.m {
		batch = append(batch, sess)
	}
	sh.mu.RUnlock()
	for _, sess := range batch {
		f(sess)
	}
	return len(batch)
}
