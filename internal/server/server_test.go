package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/papi"
)

// startServer brings up a papid instance on a loopback port and
// registers its shutdown with the test.
func startServer(t testing.TB, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, addr.String()
}

func dialT(t testing.TB, addr string) *Client {
	t.Helper()
	cl, err := DialRetry(addr, RetryConfig{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestSessionLifecycle(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: 2 * time.Millisecond})
	cl := dialT(t, addr)

	hello, err := cl.Do(wire.Request{Op: wire.OpHello})
	if err != nil {
		t.Fatal(err)
	}
	if hello.Protocol != wire.ProtocolVersion {
		t.Fatalf("protocol %d, want %d", hello.Protocol, wire.ProtocolVersion)
	}

	created, err := cl.Do(wire.Request{Op: wire.OpCreate, Platform: papi.PlatformAIXPower3,
		Events: []string{"PAPI_FP_INS"}, Workload: "dot", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if created.Session == 0 {
		t.Fatal("no session id")
	}
	id := created.Session

	if _, err := cl.Do(wire.Request{Op: wire.OpAddEvents, Session: id,
		Events: []string{"PAPI_TOT_CYC"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: id}); err != nil {
		t.Fatal(err)
	}

	// Wait for ticks to advance the workload, then observe growth.
	deadline := time.Now().Add(5 * time.Second)
	var cyc int64
	for time.Now().Before(deadline) {
		read, err := cl.Do(wire.Request{Op: wire.OpRead, Session: id})
		if err != nil {
			t.Fatal(err)
		}
		if len(read.Values) != 2 {
			t.Fatalf("READ returned %d values, want 2", len(read.Values))
		}
		if cyc = read.Values[1]; cyc > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if cyc == 0 {
		t.Error("TOT_CYC never advanced; tick loop not driving the workload")
	}

	stopped, err := cl.Do(wire.Request{Op: wire.OpStop, Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if len(stopped.Values) != 2 || stopped.Values[1] < cyc {
		t.Errorf("final values %v, want TOT_CYC >= %d", stopped.Values, cyc)
	}

	// READ after STOP serves the final snapshot.
	read, err := cl.Do(wire.Request{Op: wire.OpRead, Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if read.Source != "last" {
		t.Errorf("post-stop READ source %q, want last", read.Source)
	}

	if _, err := cl.Do(wire.Request{Op: wire.OpCloseSession, Session: id}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpRead, Session: id}); err == nil {
		t.Error("READ on a closed session succeeded")
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpBye}); err != nil {
		t.Fatal(err)
	}
}

// TestStress64ConcurrentClients drives ≥64 simultaneous clients through
// the full create/start/read/stop/close lifecycle against a live
// listener, rotating across all simulated platforms. Run under -race
// (tools/ci.sh) this is the subsystem's data-race gate.
func TestStress64ConcurrentClients(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: 2 * time.Millisecond, Shards: 8})
	platforms := papi.Platforms()

	const nClients = 64
	var wg sync.WaitGroup
	errc := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errc <- func() error {
				cl, err := Dial(addr)
				if err != nil {
					return err
				}
				defer cl.Close()
				if _, err := cl.Do(wire.Request{Op: wire.OpHello}); err != nil {
					return err
				}
				created, err := cl.Do(wire.Request{Op: wire.OpCreate,
					Platform: platforms[i%len(platforms)],
					Events:   []string{"PAPI_FP_INS", "PAPI_TOT_CYC"},
					Workload: "dot", N: 8})
				if err != nil {
					return err
				}
				id := created.Session
				if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: id}); err != nil {
					return err
				}
				for j := 0; j < 3; j++ {
					read, err := cl.Do(wire.Request{Op: wire.OpRead, Session: id})
					if err != nil {
						return err
					}
					if len(read.Values) != 2 {
						return fmt.Errorf("client %d: READ returned %d values", i, len(read.Values))
					}
				}
				stopped, err := cl.Do(wire.Request{Op: wire.OpStop, Session: id})
				if err != nil {
					return err
				}
				if len(stopped.Values) != 2 {
					return fmt.Errorf("client %d: STOP returned %d values", i, len(stopped.Values))
				}
				if _, err := cl.Do(wire.Request{Op: wire.OpCloseSession, Session: id}); err != nil {
					return err
				}
				_, err = cl.Do(wire.Request{Op: wire.OpBye})
				return err
			}()
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Error(err)
		}
	}
	st := srv.Stats()
	if st.Sessions != 0 {
		t.Errorf("%d sessions left after close", st.Sessions)
	}
	// 64 clients requested only 8 distinct (platform, events) pairs, so
	// the allocation cache must have replayed most solves.
	if st.CacheHits == 0 {
		t.Error("no allocation-cache hits across identical event sets")
	}
}

func TestSubscribeFanout(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Millisecond})
	ctl := dialT(t, addr)
	created, err := ctl.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_CYC"}, Workload: "dot", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session

	// Two independent subscriber connections attached before START.
	subs := []*Client{dialT(t, addr), dialT(t, addr)}
	for _, sc := range subs {
		if _, err := sc.Do(wire.Request{Op: wire.OpSubscribe, Session: id}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ctl.Do(wire.Request{Op: wire.OpStart, Session: id}); err != nil {
		t.Fatal(err)
	}

	for si, sc := range subs {
		var lastSeq uint64
		var lastVal int64
		for n := 0; n < 3; n++ {
			resp, err := sc.Next()
			if err != nil {
				t.Fatalf("subscriber %d: %v", si, err)
			}
			if resp.Op != wire.OpSnapshot {
				t.Fatalf("subscriber %d: op %q", si, resp.Op)
			}
			if resp.Seq <= lastSeq {
				t.Errorf("subscriber %d: seq %d after %d", si, resp.Seq, lastSeq)
			}
			if len(resp.Values) != 1 || resp.Values[0] < lastVal {
				t.Errorf("subscriber %d: values %v not monotonic (last %d)", si, resp.Values, lastVal)
			}
			lastSeq, lastVal = resp.Seq, resp.Values[0]
		}
	}
}

// TestDropOldestPolicy verifies the bounded-queue policy at the
// subscriber level: pushing into a full queue evicts the oldest frame
// and keeps the newest.
func TestDropOldestPolicy(t *testing.T) {
	sub := &subscriber{ch: make(chan frame, 2), done: make(chan struct{})}
	mk := func(seq uint64) frame {
		payload, err := wire.AppendFrame(nil, wire.CodecJSON, &wire.Response{Seq: seq})
		if err != nil {
			t.Fatal(err)
		}
		return frame{payload: payload, droppable: true}
	}
	seqOf := func(f frame) uint64 {
		var resp wire.Response
		if err := json.Unmarshal(f.payload, &resp); err != nil {
			t.Fatalf("frame payload: %v", err)
		}
		return resp.Seq
	}
	if sub.push(mk(1)) {
		t.Error("dropped on an empty queue")
	}
	sub.push(mk(2))
	if !sub.push(mk(3)) {
		t.Error("no drop reported on a full queue")
	}
	got1, got2 := seqOf(<-sub.ch), seqOf(<-sub.ch)
	if got1 != 2 || got2 != 3 {
		t.Errorf("queue holds seq %d,%d; want 2,3 (oldest dropped)", got1, got2)
	}
}

// TestSlowConsumerDropsViaTick drives the real tick → fanout → push
// path against a maximally slow consumer (a subscriber with no drain
// loop): old snapshots are dropped, the newest survives, and the tick
// loop never blocks. TCP buffering would mask this end to end, so the
// ticks are driven directly.
func TestSlowConsumerDropsViaTick(t *testing.T) {
	srv := New(Config{QueueDepth: 1, TickInterval: time.Hour})
	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_CYC"}, Workload: "dot", N: 8})
	if !created.OK {
		t.Fatal(created.Error)
	}
	sess, ok := srv.reg.get(created.Session)
	if !ok {
		t.Fatal("session not registered")
	}
	stalled := &subscriber{ch: make(chan frame, srv.cfg.QueueDepth), done: make(chan struct{})}
	if _, err := sess.addSubscriber(stalled); err != nil {
		t.Fatal(err)
	}
	if resp := srv.dispatch(nil, &wire.Request{Op: wire.OpStart, Session: created.Session}); !resp.OK {
		t.Fatal(resp.Error)
	}
	for i := 0; i < 3; i++ {
		srv.tick()
	}
	st := srv.Stats()
	if st.SnapshotsSent != 3 {
		t.Errorf("sent %d snapshots, want 3", st.SnapshotsSent)
	}
	if st.SnapshotsDropped != 2 {
		t.Errorf("dropped %d snapshots, want 2", st.SnapshotsDropped)
	}
	var latest wire.Response
	if err := json.Unmarshal((<-stalled.ch).payload, &latest); err != nil {
		t.Fatalf("frame payload: %v", err)
	}
	if latest.Seq != 3 {
		t.Errorf("stalled queue holds seq %d, want the newest (3)", latest.Seq)
	}
}

// TestPublish exercises the papirun -serve path: an external process
// posts a finished snapshot into a publish-only session and papid fans
// it out.
func TestPublish(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Millisecond})
	pub := dialT(t, addr)
	created, err := pub.Do(wire.Request{Op: wire.OpCreate, Workload: "none"})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session

	watcher := dialT(t, addr)
	if _, err := watcher.Do(wire.Request{Op: wire.OpSubscribe, Session: id}); err != nil {
		t.Fatal(err)
	}

	names := []string{"PAPI_FP_OPS", "PAPI_TOT_CYC"}
	vals := []int64{12345, 67890}
	if _, err := pub.Do(wire.Request{Op: wire.OpPublish, Session: id, Events: names, Values: vals}); err != nil {
		t.Fatal(err)
	}

	snap, err := watcher.Next()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Op != wire.OpSnapshot || snap.Source != "published" {
		t.Fatalf("snapshot op %q source %q", snap.Op, snap.Source)
	}
	if len(snap.Values) != 2 || snap.Values[0] != 12345 {
		t.Errorf("published values %v, want %v", snap.Values, vals)
	}

	read, err := pub.Do(wire.Request{Op: wire.OpRead, Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if read.Values[1] != 67890 {
		t.Errorf("READ after publish: %v", read.Values)
	}
	// Publishing a mismatched value count is rejected.
	if _, err := pub.Do(wire.Request{Op: wire.OpPublish, Session: id, Values: []int64{1}}); err == nil {
		t.Error("mismatched publish accepted")
	}
}

// TestPublishRejectionLeavesSessionIntact: a rejected PUBLISH must not
// rename the session's events, and a counting session's events cannot
// be renamed at all.
func TestPublishRejectionLeavesSessionIntact(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour})
	cl := dialT(t, addr)
	created, err := cl.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_CYC"}, Workload: "dot", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session

	// Mismatched values with renaming events: rejected, and the
	// session's original event list must survive untouched.
	if _, err := cl.Do(wire.Request{Op: wire.OpPublish, Session: id,
		Events: []string{"A", "B"}, Values: []int64{1}}); err == nil {
		t.Fatal("mismatched renaming publish accepted")
	}
	sub, err := cl.Do(wire.Request{Op: wire.OpSubscribe, Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Events) != 1 || sub.Events[0] != "PAPI_TOT_CYC" {
		t.Fatalf("rejected publish renamed session events to %v", sub.Events)
	}
	// Renaming a session that counts its own events is rejected even
	// with a consistent value count.
	if _, err := cl.Do(wire.Request{Op: wire.OpPublish, Session: id,
		Events: []string{"A", "B"}, Values: []int64{1, 2}}); err == nil {
		t.Fatal("renaming publish accepted on a session with real events")
	}
	// Value-only publish for the session's own events still works.
	if _, err := cl.Do(wire.Request{Op: wire.OpPublish, Session: id,
		Values: []int64{42}}); err != nil {
		t.Fatal(err)
	}
	read, err := cl.Do(wire.Request{Op: wire.OpRead, Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if len(read.Values) != 1 || read.Values[0] != 42 {
		t.Errorf("READ after value-only publish: %v", read.Values)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl := dialT(t, addr)
	if _, err := cl.Do(wire.Request{Op: "FROB"}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpRead, Session: 999}); err == nil {
		t.Error("READ on unknown session accepted")
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpCreate, Platform: "vax-11"}); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpCreate, Events: []string{"PAPI_NOPE"}}); err == nil {
		t.Error("unknown event accepted")
	}
	// A session with no events cannot START.
	created, err := cl.Do(wire.Request{Op: wire.OpCreate})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: created.Session}); err == nil {
		t.Error("START with an empty EventSet accepted")
	}
}

// TestQueryValidation: a reversed range or a negative step is a
// client bug and must come back as a wire ERROR, never as an empty
// series the client could mistake for "no data".
func TestQueryValidation(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour})
	cl := dialT(t, addr)
	created, err := cl.Do(wire.Request{Op: wire.OpCreate, Workload: "none"})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session
	if _, err := cl.Do(wire.Request{Op: wire.OpPublish, Session: id,
		Events: []string{"PAPI_TOT_CYC"}, Values: []int64{42}}); err != nil {
		t.Fatal(err)
	}

	// from > to: rejected with a range error.
	resp, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
		From: 100, To: 50, Step: 0})
	if err == nil {
		t.Error("QUERY with from > to accepted")
	} else if !strings.Contains(resp.Error, "bad range") {
		t.Errorf("from > to error %q does not name the range", resp.Error)
	}
	// from == to is degenerate too (empty half-open window).
	if _, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
		From: 100, To: 100}); err == nil {
		t.Error("QUERY with from == to accepted")
	}
	// step < 0: rejected with a step error.
	resp, err = cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
		From: 0, To: 1 << 62, Step: -1})
	if err == nil {
		t.Error("QUERY with negative step accepted")
	} else if !strings.Contains(resp.Error, "bad step") {
		t.Errorf("negative step error %q does not name the step", resp.Error)
	}
	// The connection survives the rejections and a valid query works.
	good, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
		From: 0, To: 1<<63 - 1, Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(good.Series) != 1 {
		t.Errorf("valid QUERY after rejections returned %d series, want 1", len(good.Series))
	}
}

// TestGracefulShutdown checks that Shutdown folds running sessions and
// returns with no goroutines stuck, even with live subscribers.
func TestGracefulShutdown(t *testing.T) {
	srv := New(Config{TickInterval: time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	created, err := cl.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_CYC"}, Workload: "dot", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: created.Session}); err != nil {
		t.Fatal(err)
	}
	sub, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.Do(wire.Request{Op: wire.OpSubscribe, Session: created.Session}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := Dial(addr.String()); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
