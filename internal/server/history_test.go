package server

import (
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/tsdb"
	"repro/internal/wire"
)

// bruteBuckets is an independent reference for QUERY's window
// semantics over an uncompressed sample log (see tsdb.Query): windows
// on the absolute step grid, each aggregated whole.
func bruteBuckets(ts, vs []int64, from, to, step int64) []tsdb.Bucket {
	effFrom := from - from%step
	var out []tsdb.Bucket
	for i := range ts {
		w := ts[i] - ts[i]%step
		if w < effFrom || w >= to {
			continue
		}
		v := vs[i]
		if n := len(out); n > 0 && out[n-1].Start == w {
			bk := &out[n-1]
			if v < bk.Min {
				bk.Min = v
			}
			if v > bk.Max {
				bk.Max = v
			}
			bk.Sum += v
			bk.Last = v
			bk.Count++
		} else {
			out = append(out, tsdb.Bucket{Start: w, Count: 1, Min: v, Max: v, Sum: v, Last: v})
		}
	}
	return out
}

// TestQuery100kTicks is the acceptance gate at the service layer: a
// session fed 100k ticks (driven deterministically through dispatch
// with an injected clock) answers QUERY with exactly the brute-force
// min/max/sum/count at every rollup level, stays inside the byte
// budget, and keeps answering after the session is closed.
func TestQuery100kTicks(t *testing.T) {
	const nTicks = 100_000
	clock := int64(1_000_000)
	srv := New(Config{
		TickInterval:  time.Hour, // ticks driven by hand below
		TSDBMaxBytes:  2 << 20,
		TSDBRetention: -1,
		now:           func() int64 { return clock },
	})
	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate, Workload: "none",
		Events: nil, Label: "history-test"})
	if !created.OK {
		t.Fatal(created.Error)
	}
	id := created.Session

	events := []string{"PAPI_FP_OPS", "PAPI_TOT_CYC"}
	rng := rand.New(rand.NewSource(11))
	tss := make([]int64, 0, nTicks)
	vals := map[string][]int64{}
	cum := map[string]int64{}
	for i := 0; i < nTicks; i++ {
		clock += 10_000 // 10ms tick
		row := make([]int64, len(events))
		for j, ev := range events {
			cum[ev] += 5_000 + rng.Int63n(503)
			row[j] = cum[ev]
			vals[ev] = append(vals[ev], cum[ev])
		}
		tss = append(tss, clock)
		resp := srv.dispatch(nil, &wire.Request{Op: wire.OpPublish, Session: id,
			Events: events, Values: row})
		if !resp.OK {
			t.Fatalf("publish %d: %s", i, resp.Error)
		}
	}

	st := srv.Stats()
	if st.TSDB.Samples != uint64(nTicks*len(events)) {
		t.Fatalf("tsdb holds %d samples, want %d", st.TSDB.Samples, nTicks*len(events))
	}
	if st.TSDB.Bytes > 2<<20 {
		t.Errorf("tsdb %d bytes exceeds the 2 MiB budget", st.TSDB.Bytes)
	}

	from, to := tss[0], tss[len(tss)-1]+1
	for _, step := range []int64{10_000_000, 30_000_000, 60_000_000, 300_000_000} {
		resp := srv.dispatch(nil, &wire.Request{Op: wire.OpQuery, Session: id,
			From: from, To: to, Step: step})
		if !resp.OK {
			t.Fatalf("QUERY step=%d: %s", step, resp.Error)
		}
		if len(resp.Series) != len(events) {
			t.Fatalf("QUERY step=%d: %d series, want %d", step, len(resp.Series), len(events))
		}
		for _, sr := range resp.Series {
			want := bruteBuckets(tss, vals[sr.Event], from, to, step)
			if len(sr.Buckets) != len(want) {
				t.Fatalf("step=%d %s: %d buckets, want %d", step, sr.Event, len(sr.Buckets), len(want))
			}
			for i := range want {
				if sr.Buckets[i] != want[i] {
					t.Fatalf("step=%d %s bucket %d = %+v, want %+v",
						step, sr.Event, i, sr.Buckets[i], want[i])
				}
			}
		}
	}

	// Event filtering narrows the reply.
	resp := srv.dispatch(nil, &wire.Request{Op: wire.OpQuery, Session: id,
		Events: []string{"PAPI_TOT_CYC"}, From: from, To: to, Step: 60_000_000})
	if len(resp.Series) != 1 || resp.Series[0].Event != "PAPI_TOT_CYC" {
		t.Fatalf("filtered QUERY: %+v", resp.Series)
	}

	// History must outlive its session: close it, query again.
	if closed := srv.dispatch(nil, &wire.Request{Op: wire.OpCloseSession, Session: id}); !closed.OK {
		t.Fatal(closed.Error)
	}
	resp = srv.dispatch(nil, &wire.Request{Op: wire.OpQuery, Session: id,
		From: from, To: to, Step: 60_000_000})
	if !resp.OK || len(resp.Series) != 2 {
		t.Fatalf("QUERY after CLOSE_SESSION: ok=%v series=%d", resp.OK, len(resp.Series))
	}

	// Bad ranges are rejected.
	if resp := srv.dispatch(nil, &wire.Request{Op: wire.OpQuery, Session: id,
		From: 100, To: 100}); resp.OK {
		t.Error("empty range accepted")
	}
}

// TestQueryEndToEnd exercises the full TCP path: live ticks populate
// the store and a QUERY returns windows consistent with the raw
// samples, cross-checked through the wire.
func TestQueryEndToEnd(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: 2 * time.Millisecond})
	cl := dialT(t, addr)
	hello, err := cl.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if hello.Protocol < wire.MinProtocolQuery {
		t.Fatalf("server protocol %d does not speak QUERY", hello.Protocol)
	}
	created, err := cl.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_CYC", "PAPI_FP_INS"}, Workload: "dot", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session
	if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: id}); err != nil {
		t.Fatal(err)
	}

	// Wait until history has accumulated a handful of ticks.
	var raw wire.Response
	deadline := time.Now().Add(10 * time.Second)
	for {
		raw, err = cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
			From: 0, To: 1<<63 - 1, Step: 0})
		if err != nil {
			t.Fatal(err)
		}
		if len(raw.Series) == 2 && len(raw.Series[0].Buckets) >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never accumulated: %d series", len(raw.Series))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// One wide window must aggregate exactly the raw points we saw.
	// Re-query with To clamped so later ticks can't slip in between
	// the two requests.
	sr := raw.Series[0]
	pts := sr.Buckets
	lastTS := pts[len(pts)-1].Start
	step := lastTS + 1_000_000 // single window covering everything
	win, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
		Events: []string{sr.Event}, From: 0, To: lastTS + 1, Step: step})
	if err != nil {
		t.Fatal(err)
	}
	if len(win.Series) != 1 || len(win.Series[0].Buckets) < 1 {
		t.Fatalf("windowed query: %+v", win.Series)
	}
	got := win.Series[0].Buckets[0]
	var wantSum int64
	var wantCount uint64
	wantMin, wantMax := pts[0].Min, pts[0].Max
	for _, p := range pts {
		if p.Start >= got.Start+step {
			break
		}
		wantSum += p.Sum
		wantCount += p.Count
		if p.Min < wantMin {
			wantMin = p.Min
		}
		if p.Max > wantMax {
			wantMax = p.Max
		}
	}
	if got.Count < wantCount || got.Sum < wantSum || got.Min != wantMin {
		t.Errorf("window %+v inconsistent with raw points (count>=%d sum>=%d min=%d)",
			got, wantCount, wantSum, wantMin)
	}

	// STATS reports the store.
	stats, err := cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stats["tsdb_series"] != 2 || stats.Stats["tsdb_samples"] == 0 ||
		stats.Stats["tsdb_bytes"] == 0 {
		t.Errorf("tsdb stats missing: %v", stats.Stats)
	}
}

// TestMalformedFrameKeepsConnection: garbage on the wire draws an
// ERROR frame and the connection keeps serving — the fuzz-found
// failure mode (decoder death killing the loop) must stay fixed.
func TestMalformedFrameKeepsConnection(t *testing.T) {
	_, addr := startServer(t, Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	dec := wire.NewDecoder(nc)

	for i, garbage := range []string{"this is not json", `{"op":"HELLO"`, `[1,2,3]`} {
		if _, err := fmt.Fprintf(nc, "%s\n", garbage); err != nil {
			t.Fatal(err)
		}
		var resp wire.Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatalf("garbage %d: connection died: %v", i, err)
		}
		if resp.Op != wire.OpError || resp.OK {
			t.Fatalf("garbage %d: got %+v, want an ERROR frame", i, resp)
		}
	}
	// The same connection still answers real requests.
	if _, err := fmt.Fprintf(nc, `{"op":"HELLO","version":%d}`+"\n", wire.ProtocolVersion); err != nil {
		t.Fatal(err)
	}
	var hello wire.Response
	if err := dec.Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Op != wire.OpHello || !hello.OK || hello.Protocol != wire.ProtocolVersion {
		t.Fatalf("HELLO after garbage: %+v", hello)
	}
}

// TestHistoryDisabled: a server with history off serves everything
// else and rejects QUERY cleanly.
func TestHistoryDisabled(t *testing.T) {
	_, addr := startServer(t, Config{TSDBMaxBytes: -1})
	cl := dialT(t, addr)
	created, err := cl.Do(wire.Request{Op: wire.OpCreate, Workload: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpPublish, Session: created.Session,
		Events: []string{"E"}, Values: []int64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: created.Session,
		From: 0, To: 1 << 40, Step: 0}); err == nil {
		t.Error("QUERY accepted with history disabled")
	}
	stats, err := cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stats["tsdb_bytes"] != 0 {
		t.Errorf("disabled tsdb reports %d bytes", stats.Stats["tsdb_bytes"])
	}
}
