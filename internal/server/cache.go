package server

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/hwsim"
)

// allocCache is an LRU memo of counter-allocation solves keyed by
// (platform, sorted native-event subset). Sessions overwhelmingly ask
// for the same handful of event combinations — every dashboard wants
// FLOPS and cycles — so repeated identical EventSets replay the cached
// assignment instead of re-running the bipartite matching. Failures are
// cached too: a combination that conflicts on this platform's counters
// keeps conflicting, and the negative entry turns repeat rejections
// into a map lookup.
type allocCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key      string
	counters map[uint32]int // native code -> physical counter
	err      error
}

func newAllocCache(max int) *allocCache {
	if max <= 0 {
		max = 256
	}
	return &allocCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// assign returns the counter assignment for codes on arch, replaying a
// memoized result on a hit and solving the matching on a miss. The
// returned map is shared and must be treated as read-only.
func (c *allocCache) assign(a *hwsim.Arch, codes []uint32) (map[uint32]int, error) {
	key := a.Platform + "|" + alloc.Key(codes)
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		ent := el.Value.(*cacheEntry)
		c.mu.Unlock()
		return ent.counters, ent.err
	}
	c.misses++
	c.mu.Unlock()

	// Solve outside the lock: the matching is deterministic, so a
	// concurrent duplicate solve wastes a little work but stays correct.
	counters, err := solveAlloc(a, codes)
	ent := &cacheEntry{key: key, counters: counters, err: err}

	c.mu.Lock()
	if _, ok := c.byKey[key]; !ok {
		c.byKey[key] = c.ll.PushFront(ent)
		if c.ll.Len() > c.max {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.byKey, oldest.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	return counters, err
}

// counters returns (hits, misses) so far.
func (c *allocCache) counters() (uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *allocCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// solveAlloc is the hardware-dependent translation step (the same
// shape as the substrate's allocate): build per-event counter masks
// from the architecture tables and hand the hardware-independent
// matching to internal/alloc.
func solveAlloc(a *hwsim.Arch, codes []uint32) (map[uint32]int, error) {
	items := make([]alloc.Item, len(codes))
	for i, code := range codes {
		ev, ok := a.EventByCode(code)
		if !ok {
			return nil, fmt.Errorf("unknown native event %#x on %s", code, a.Platform)
		}
		items[i] = alloc.Item{ID: code, Mask: ev.CounterMask, Weight: 1}
	}
	var res alloc.Result
	var ok bool
	if len(a.Groups) > 0 {
		res, _, ok = alloc.AssignGrouped(items, a.NumCounters, a.Groups)
	} else {
		res, ok = alloc.Assign(items, a.NumCounters)
	}
	if !ok {
		return nil, fmt.Errorf("%d events conflict on %s's %d counters", len(codes), a.Platform, a.NumCounters)
	}
	out := make(map[uint32]int, len(codes))
	for i := range items {
		out[items[i].ID] = res.Counter[i]
	}
	return out, nil
}
