// Tests for the parallel tick pipeline (tick.go, DESIGN.md S31): the
// per-session ordering invariants the sharded sweep must preserve at
// every worker count, the serial-equivalence guarantee of width 1, and
// the async WAL handoff's durability semantics. Run under -race by
// tools/ci.sh — most of what these tests certify is the absence of
// cross-worker interference, which only the race detector and the
// byte-level stream comparisons can see.
package server

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/wire"
)

// parallelHarness builds a hand-ticked server with nSessions counting
// sessions, one detached subscriber each (channel capacity queueCap,
// caller-drained), spread across registry shards.
type parallelHarness struct {
	srv  *Server
	ids  []uint64
	subs []*subscriber
}

func newParallelHarness(t *testing.T, cfg Config, nSessions, queueCap int) *parallelHarness {
	t.Helper()
	h := &parallelHarness{srv: New(cfg)}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		h.srv.Shutdown(ctx)
	})
	for i := 0; i < nSessions; i++ {
		created := h.srv.dispatch(nil, &wire.Request{Op: wire.OpCreate,
			Events: []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"}, Workload: "dot", N: 8})
		if !created.OK {
			t.Fatal(created.Error)
		}
		sess, ok := h.srv.reg.get(created.Session)
		if !ok {
			t.Fatal("session not registered")
		}
		sub := &subscriber{ch: make(chan frame, queueCap), done: make(chan struct{})}
		if _, err := sess.addSubscriber(sub); err != nil {
			t.Fatal(err)
		}
		if resp := h.srv.dispatch(nil, &wire.Request{Op: wire.OpStart,
			Session: created.Session}); !resp.OK {
			t.Fatal(resp.Error)
		}
		h.ids = append(h.ids, created.Session)
		h.subs = append(h.subs, sub)
	}
	return h
}

// drain empties one subscriber queue, decoding each frame.
func drainFrames(t *testing.T, sub *subscriber) []wire.Response {
	t.Helper()
	var out []wire.Response
	for {
		select {
		case f := <-sub.ch:
			var resp wire.Response
			if err := json.Unmarshal(f.payload, &resp); err != nil {
				t.Fatalf("frame payload: %v", err)
			}
			f.release()
			out = append(out, resp)
		default:
			return out
		}
	}
}

// TestParallelTickSeqMonotonic: with the sweep at full width, every
// subscriber still sees its session's snapshots in strictly increasing,
// gapless Seq order — the per-session ordering invariant the shard
// partitioning exists to preserve. Queues are deep enough that nothing
// drops, so any gap or reorder is a sweep bug, not backpressure.
func TestParallelTickSeqMonotonic(t *testing.T) {
	const nSessions, nTicks = 32, 10
	h := newParallelHarness(t, Config{TickInterval: time.Hour, TickWorkers: 8},
		nSessions, nTicks+2)
	for i := 0; i < nTicks; i++ {
		h.srv.tick()
	}
	for i, sub := range h.subs {
		frames := drainFrames(t, sub)
		if len(frames) != nTicks {
			t.Fatalf("session %d: %d frames, want %d", h.ids[i], len(frames), nTicks)
		}
		for j, f := range frames {
			if f.Session != h.ids[i] {
				t.Fatalf("session %d received session %d's frame", h.ids[i], f.Session)
			}
			if want := uint64(j + 1); f.Seq != want {
				t.Fatalf("session %d frame %d: seq %d, want %d (gapless, in order)",
					h.ids[i], j, f.Seq, want)
			}
		}
	}
	if st := h.srv.Stats(); st.SnapshotsDropped != 0 ||
		st.SnapshotsSent != uint64(nSessions*nTicks) {
		t.Fatalf("sent=%d dropped=%d, want %d/0", st.SnapshotsSent,
			st.SnapshotsDropped, nSessions*nTicks)
	}
}

// TestParallelSerialEquivalence: a TickWorkers=1 server and a
// TickWorkers=8 server fed identical inputs produce byte-identical
// per-subscriber frame streams. Width 1 is the exact pre-parallel
// serial pipeline; this pins that higher widths change scheduling
// only, never any session's stream content or order.
func TestParallelSerialEquivalence(t *testing.T) {
	const nSessions, nTicks = 16, 6
	run := func(workers int) map[uint64][]string {
		h := newParallelHarness(t, Config{TickInterval: time.Hour, TickWorkers: workers},
			nSessions, nTicks+2)
		for i := 0; i < nTicks; i++ {
			h.srv.tick()
		}
		streams := make(map[uint64][]string, nSessions)
		for i, sub := range h.subs {
		drain:
			for {
				select {
				case f := <-sub.ch:
					streams[h.ids[i]] = append(streams[h.ids[i]], string(f.payload))
					f.release()
				default:
					break drain
				}
			}
		}
		return streams
	}
	serial, parallel := run(1), run(8)
	for id, want := range serial {
		got := parallel[id]
		if len(got) != len(want) {
			t.Fatalf("session %d: %d frames parallel vs %d serial", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("session %d frame %d diverged:\nserial:   %s\nparallel: %s",
					id, i, want[i], got[i])
			}
		}
	}
}

// TestParallelDeltaRekeyAfterDrop: a delta subscriber that drops frames
// under the parallel sweep is re-anchored — the first frame it receives
// after a drop is a full keyframe, never a DELTA chained to an epoch it
// may have lost. This is the delta-correctness invariant under
// concurrent sweep workers plus backpressure.
func TestParallelDeltaRekeyAfterDrop(t *testing.T) {
	srv := New(Config{TickInterval: time.Hour, TickWorkers: 8,
		QueueDepth: 2, KeyframeEvery: 1 << 30})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"}, Workload: "dot", N: 8})
	if !created.OK {
		t.Fatal(created.Error)
	}
	sess, _ := srv.reg.get(created.Session)
	sig, canon := filterSig(nil, true)
	sub := &subscriber{ch: make(chan frame, srv.cfg.QueueDepth),
		done: make(chan struct{}), events: canon, delta: true, sig: sig}
	sub.needKey.Store(true)
	if _, err := sess.addSubscriber(sub); err != nil {
		t.Fatal(err)
	}
	if resp := srv.dispatch(nil, &wire.Request{Op: wire.OpStart,
		Session: created.Session}); !resp.OK {
		t.Fatal(resp.Error)
	}

	srv.tick() // anchors the epoch
	frames := drainFrames(t, sub)
	if len(frames) != 1 || frames[0].Op != wire.OpSnapshot {
		t.Fatalf("first frame: %+v, want one keyframe SNAPSHOT", frames)
	}
	// Undrained ticks overflow the 2-deep queue: deltas drop, and one
	// of the lost frames could have been a keyframe.
	for i := 0; i < 5; i++ {
		srv.tick()
	}
	if st := srv.Stats(); st.DeltasDropped == 0 {
		t.Fatal("no deltas dropped; the test never created the resync condition")
	}
	drainFrames(t, sub)
	srv.tick()
	after := drainFrames(t, sub)
	if len(after) == 0 {
		t.Fatal("no frame after resync tick")
	}
	if after[0].Op != wire.OpSnapshot {
		t.Fatalf("first frame after drop is %s, want a keyframe SNAPSHOT", after[0].Op)
	}
}

// TestParallelDerivedFollowsSnapshot: under the parallel sweep, every
// DERIVED frame a subscriber receives carries the Seq of the SNAPSHOT
// frame immediately before it in its queue — evaluation and both
// fan-outs of one session-tick stay a single unit on one worker.
func TestParallelDerivedFollowsSnapshot(t *testing.T) {
	srv := New(Config{TickInterval: time.Hour, TickWorkers: 8, Groups: []string{"ipc"}})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	const nSessions, nTicks = 8, 6
	c := &conn{srv: srv, q: newWriteQueue(4)}
	c.version.Store(int32(wire.MinProtocolDerived))
	var subs []*subscriber
	for i := 0; i < nSessions; i++ {
		created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate,
			Events: []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"}, Workload: "dot", N: 8})
		if !created.OK {
			t.Fatal(created.Error)
		}
		sess, _ := srv.reg.get(created.Session)
		sub := &subscriber{c: c, ch: make(chan frame, 4*nTicks), done: make(chan struct{})}
		if _, err := sess.addSubscriber(sub); err != nil {
			t.Fatal(err)
		}
		if resp := srv.dispatch(nil, &wire.Request{Op: wire.OpStart,
			Session: created.Session}); !resp.OK {
			t.Fatal(resp.Error)
		}
		subs = append(subs, sub)
	}
	for i := 0; i < nTicks; i++ {
		srv.tick()
	}
	derived := 0
	for _, sub := range subs {
		frames := drainFrames(t, sub)
		var lastSnap uint64
		for _, f := range frames {
			switch f.Op {
			case wire.OpSnapshot:
				lastSnap = f.Seq
			case wire.OpDerived:
				derived++
				if f.Seq != lastSnap {
					t.Fatalf("DERIVED seq %d after SNAPSHOT seq %d; must match", f.Seq, lastSnap)
				}
			default:
				t.Fatalf("unexpected op %s", f.Op)
			}
		}
	}
	// The first tick only primes deltas, so nTicks-1 evaluations per
	// session reach the subscriber.
	if want := nSessions * (nTicks - 1); derived != want {
		t.Fatalf("%d DERIVED frames, want %d", derived, want)
	}
}

// TestAsyncWALHandoffDurable: on a durable server the tick's history
// rows flow through the async appender — yet QUERY sees them (the
// handoff adds latency, never loss), STATS exposes the tick_stalls
// counter, and a graceful shutdown drains the queue so a restart
// replays every row a tick produced.
func TestAsyncWALHandoffDurable(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		TickInterval:  time.Millisecond,
		TickWorkers:   8,
		TSDBRetention: -1,
		DataDir:       dir,
		Fsync:         "off",
		WALQueueRows:  4, // tiny queue: batches and (likely) stalls both exercised
	}
	srv, addr := startServer(t, cfg)
	cl := dialT(t, addr)
	created, err := cl.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"}, Workload: "dot", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session
	if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: id}); err != nil {
		t.Fatal(err)
	}
	// Ticks flow through histCh → histLoop → wal.AppendRows; poll until
	// QUERY serves a healthy row count to prove the async path lands in
	// the same store the synchronous one did.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
			From: 0, To: 1 << 62, Step: 0})
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for _, s := range resp.Series {
			rows += len(s.Buckets)
		}
		if rows >= 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async handoff never surfaced history: %d raw rows", rows)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats, err := cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stats.Stats["tick_stalls"]; !ok {
		t.Fatalf("STATS lacks tick_stalls: %v", stats.Stats)
	}
	if stats.Stats["wal_rows"] == 0 {
		t.Fatal("wal_rows = 0: async rows never reached the journal")
	}
	cl.Close()

	want := durableQueries(t, srv, id, 0, 1<<60)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	srv2 := New(Config{TickInterval: time.Hour, TSDBRetention: -1, DataDir: dir, Fsync: "off"})
	if srv2.walErr != nil {
		t.Fatalf("wal reopen: %v", srv2.walErr)
	}
	defer srv2.Shutdown(context.Background())
	if got := durableQueries(t, srv2, id, 0, 1<<60); got != want {
		t.Errorf("QUERY diverged across restart (queued rows lost?):\nbefore: %s\nafter:  %s",
			want, got)
	}
}
