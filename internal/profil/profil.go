// Package profil implements SVR4-compatible statistical profiling
// histograms, the model behind PAPI_profil (§2 of the paper): each
// counter-overflow interrupt hashes the reported program counter into a
// bucket array scaled over a text address range, so hot code regions
// accumulate proportionally more hits.
package profil

import "fmt"

// ScaleUnit is the fixed-point denominator of the SVR4 scale factor: a
// scale of 65536 maps each 2 bytes of text to its own bucket; 32768
// maps 4 bytes per bucket; and so on.
const ScaleUnit = 65536

// Profile is one SVR4 profil histogram.
type Profile struct {
	Offset  uint64   // lowest covered text address
	Scale   uint32   // SVR4 fixed-point scale
	Buckets []uint64 // hit counts
	// Outside counts hits that fell below Offset or beyond the last
	// bucket; SVR4 silently drops them, but tools want to know.
	Outside uint64
}

// New builds a profile of nbuckets buckets starting at offset with the
// given SVR4 scale.
func New(offset uint64, nbuckets int, scale uint32) (*Profile, error) {
	if nbuckets <= 0 {
		return nil, fmt.Errorf("profil: need at least one bucket")
	}
	if scale == 0 || scale > ScaleUnit {
		return nil, fmt.Errorf("profil: scale %d out of range (1..%d)", scale, ScaleUnit)
	}
	return &Profile{Offset: offset, Scale: scale, Buckets: make([]uint64, nbuckets)}, nil
}

// Covering builds a profile whose buckets exactly span [lo, hi) with
// the given bytes-per-bucket granularity (must be even, ≥ 2, as SVR4
// scales cannot subdivide below 2 bytes).
func Covering(lo, hi uint64, bytesPerBucket int) (*Profile, error) {
	if hi <= lo {
		return nil, fmt.Errorf("profil: empty address range [%#x,%#x)", lo, hi)
	}
	if bytesPerBucket < 2 || bytesPerBucket%2 != 0 {
		return nil, fmt.Errorf("profil: bytes per bucket must be an even number >= 2, got %d", bytesPerBucket)
	}
	scale := uint32(2 * ScaleUnit / bytesPerBucket)
	n := int((hi - lo + uint64(bytesPerBucket) - 1) / uint64(bytesPerBucket))
	return New(lo, n, scale)
}

// BucketFor maps a program counter to its bucket index using the SVR4
// formula: index = ((pc-offset)/2 * scale) / 65536.
func (p *Profile) BucketFor(pc uint64) (int, bool) {
	if pc < p.Offset {
		return 0, false
	}
	idx := (pc - p.Offset) / 2 * uint64(p.Scale) / ScaleUnit
	if idx >= uint64(len(p.Buckets)) {
		return 0, false
	}
	return int(idx), true
}

// BytesPerBucket returns how many text bytes one bucket covers.
func (p *Profile) BytesPerBucket() uint64 {
	return 2 * ScaleUnit / uint64(p.Scale)
}

// AddrRange returns the address interval [lo, hi) a bucket covers.
func (p *Profile) AddrRange(bucket int) (lo, hi uint64) {
	bpb := p.BytesPerBucket()
	lo = p.Offset + uint64(bucket)*bpb
	return lo, lo + bpb
}

// Hit records one overflow at pc.
func (p *Profile) Hit(pc uint64) {
	if idx, ok := p.BucketFor(pc); ok {
		p.Buckets[idx]++
		return
	}
	p.Outside++
}

// Total returns the number of in-range hits.
func (p *Profile) Total() uint64 {
	var n uint64
	for _, b := range p.Buckets {
		n += b
	}
	return n
}

// Reset zeroes the histogram.
func (p *Profile) Reset() {
	clear(p.Buckets)
	p.Outside = 0
}

// Hot returns the indices of the k highest buckets, descending by hits
// (ties by address). It is what perfometer-style tools use to point at
// bottlenecks.
func (p *Profile) Hot(k int) []int {
	type bh struct {
		idx  int
		hits uint64
	}
	var top []bh
	for i, h := range p.Buckets {
		if h == 0 {
			continue
		}
		top = append(top, bh{i, h})
	}
	// Insertion-sort by hits descending; histograms are small.
	for i := 1; i < len(top); i++ {
		for j := i; j > 0 && (top[j].hits > top[j-1].hits ||
			(top[j].hits == top[j-1].hits && top[j].idx < top[j-1].idx)); j-- {
			top[j], top[j-1] = top[j-1], top[j]
		}
	}
	if k > len(top) {
		k = len(top)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = top[i].idx
	}
	return out
}
