package profil

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0, ScaleUnit); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := New(0, 10, 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := New(0, 10, ScaleUnit+1); err == nil {
		t.Error("oversized scale accepted")
	}
	if _, err := New(0x400000, 128, ScaleUnit); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestSVR4ScaleSemantics(t *testing.T) {
	// Scale 65536: one bucket per 2 bytes.
	p, _ := New(0x1000, 16, ScaleUnit)
	if p.BytesPerBucket() != 2 {
		t.Errorf("bytes/bucket = %d, want 2", p.BytesPerBucket())
	}
	for pc, want := range map[uint64]int{0x1000: 0, 0x1001: 0, 0x1002: 1, 0x1003: 1, 0x101e: 15} {
		idx, ok := p.BucketFor(pc)
		if !ok || idx != want {
			t.Errorf("BucketFor(%#x) = %d,%v want %d", pc, idx, ok, want)
		}
	}
	// Scale 32768: one bucket per 4 bytes.
	p4, _ := New(0x1000, 16, ScaleUnit/2)
	if p4.BytesPerBucket() != 4 {
		t.Errorf("bytes/bucket = %d, want 4", p4.BytesPerBucket())
	}
	if idx, _ := p4.BucketFor(0x1007); idx != 1 {
		t.Errorf("scale-32768 bucket = %d, want 1", idx)
	}
}

func TestHitRangeHandling(t *testing.T) {
	p, _ := New(0x1000, 8, ScaleUnit)
	p.Hit(0x0fff) // below range
	p.Hit(0x1010) // past last bucket (8 buckets × 2 bytes)
	p.Hit(0x1004) // bucket 2
	if p.Outside != 2 {
		t.Errorf("Outside = %d, want 2", p.Outside)
	}
	if p.Buckets[2] != 1 || p.Total() != 1 {
		t.Errorf("bucket state wrong: %v total %d", p.Buckets, p.Total())
	}
	p.Reset()
	if p.Total() != 0 || p.Outside != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCovering(t *testing.T) {
	p, err := Covering(0x400000, 0x400100, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Buckets) != 16 {
		t.Errorf("buckets = %d, want 16", len(p.Buckets))
	}
	if p.BytesPerBucket() != 16 {
		t.Errorf("bytes/bucket = %d, want 16", p.BytesPerBucket())
	}
	lo, hi := p.AddrRange(1)
	if lo != 0x400010 || hi != 0x400020 {
		t.Errorf("AddrRange(1) = [%#x,%#x)", lo, hi)
	}
	if _, err := Covering(10, 10, 16); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := Covering(0, 100, 3); err == nil {
		t.Error("odd granularity accepted")
	}
	if _, err := Covering(0, 100, 0); err == nil {
		t.Error("zero granularity accepted")
	}
}

func TestBucketInvariants(t *testing.T) {
	// Property: every in-range pc maps to a bucket whose AddrRange
	// contains it, and total hits equal hits issued minus outside.
	f := func(pcs []uint16, scaleSel uint8) bool {
		scales := []uint32{ScaleUnit, ScaleUnit / 2, ScaleUnit / 8, ScaleUnit / 32}
		scale := scales[int(scaleSel)%len(scales)]
		p, err := New(0x2000, 64, scale)
		if err != nil {
			return false
		}
		var issued uint64
		for _, off := range pcs {
			pc := 0x2000 + uint64(off)
			if idx, ok := p.BucketFor(pc); ok {
				lo, hi := p.AddrRange(idx)
				if pc < lo || pc >= hi {
					return false
				}
			}
			p.Hit(pc)
			issued++
		}
		return p.Total()+p.Outside == issued
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHotRanking(t *testing.T) {
	p, _ := New(0, 8, ScaleUnit)
	for i := 0; i < 5; i++ {
		p.Hit(6) // bucket 3
	}
	for i := 0; i < 3; i++ {
		p.Hit(2) // bucket 1
	}
	p.Hit(0) // bucket 0
	hot := p.Hot(2)
	if len(hot) != 2 || hot[0] != 3 || hot[1] != 1 {
		t.Errorf("Hot(2) = %v, want [3 1]", hot)
	}
	if all := p.Hot(100); len(all) != 3 {
		t.Errorf("Hot(100) = %v, want 3 entries", all)
	}
}
