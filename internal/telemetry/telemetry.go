// Package telemetry is papid's self-instrumentation layer: a
// dependency-free metrics registry cheap enough to live on the serving
// hot path. The paper's thesis — you cannot tune what you cannot
// measure (§1) — applies to the measurement service itself: a daemon
// that exposes everyone else's counters but observes itself through a
// handful of lifetime totals is flying blind exactly where its users
// look first when latency regresses.
//
// Three instrument kinds cover the needs of a serving daemon:
//
//   - Counter: a monotonically increasing total, striped across
//     padded atomic cells so concurrent hot-path increments from many
//     connections do not serialize on one cache line;
//   - Gauge: a settable level (queue depth, live sessions), plus
//     CounterFunc/GaugeFunc for values that already live elsewhere and
//     only need reading at scrape time;
//   - Histogram: a log-linear-bucket latency distribution (bounded
//     relative error, fixed memory, lock-free recording) from which
//     p50/p90/p99/max are extracted on demand — the per-op latency
//     shape DCPI-style always-on profiling demands at near-zero
//     recording cost.
//
// A Registry owns a set of named instruments and renders them as
// Prometheus text exposition (WritePrometheus), as JSON (WriteJSON for
// /statusz), and as compact wire summaries (Summaries) that ride the
// papid STATS op so remote tools can see the daemon's own latency
// quantiles.
package telemetry

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// stripes is the cell count of a striped Counter. 16 padded cells keep
// a 64-way-concurrent increment storm off any single cache line while
// costing 1 KiB per counter.
const stripes = 16

// cell is one padded counter stripe: the value plus enough padding to
// fill a 64-byte cache line, so neighboring stripes never false-share.
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// stripeIdx picks a stripe for this increment. math/rand/v2's global
// generator is per-thread lock-free state in the runtime, so this is a
// few nanoseconds and never a synchronization point; random placement
// spreads sustained contention evenly without needing a goroutine ID.
func stripeIdx() int {
	return int(rand.Uint64() & (stripes - 1))
}

// Counter is a monotonically increasing striped atomic total.
type Counter struct {
	desc  desc
	cells [stripes]cell
}

// Inc adds 1.
func (c *Counter) Inc() { c.cells[stripeIdx()].v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.cells[stripeIdx()].v.Add(n) }

// Value sums the stripes. The sum is not an atomic snapshot across
// stripes — fine for monitoring, where each stripe is itself monotone.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Gauge is a settable level.
type Gauge struct {
	desc desc
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the level by delta (use a negative delta to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// desc is an instrument's identity: metric name, help text, and an
// optional fixed label set. Instruments sharing a Name form one
// Prometheus family and must agree on kind.
type desc struct {
	name   string
	help   string
	labels []Label
	// key, when non-empty, names this instrument in Summaries() — the
	// compact identifier that rides the wire STATS op.
	key string
}

// Label is one fixed name="value" pair attached to an instrument.
type Label struct {
	Name, Value string
}

// labelString renders {a="x",b="y"} (sorted), or "" without labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Name, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Opts names an instrument being registered.
type Opts struct {
	// Name is the Prometheus metric name (e.g.
	// "papid_snapshots_sent_total").
	Name string
	// Help is the one-line HELP text.
	Help string
	// Labels are fixed label pairs distinguishing this instrument from
	// others in the same family (e.g. codec="json").
	Labels []Label
	// Key, when non-empty, includes the instrument in
	// Registry.Summaries under this compact name — the identifier wire
	// STATS clients see (e.g. "op/READ/json").
	Key string
}

func (o Opts) desc() desc {
	labels := append([]Label(nil), o.Labels...)
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	return desc{name: o.Name, help: o.Help, labels: labels, key: o.Key}
}

// instrument is the registry's view of one metric.
type instrument struct {
	desc desc
	kind kind

	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	counterFunc func() uint64
	gaugeFunc   func() float64
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry owns a set of instruments. Registration happens at startup
// (it takes a lock and validates uniqueness); recording on the
// returned instruments is lock-free.
type Registry struct {
	mu    sync.Mutex
	insts []*instrument
	byID  map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*instrument)}
}

// register validates and stores inst, panicking on a duplicate
// (name, labels) identity or a kind clash within a family —
// registration is programmer-controlled startup code, where a silent
// collision would corrupt the exposition.
func (r *Registry) register(inst *instrument) {
	id := inst.desc.name + labelString(inst.desc.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[id]; dup {
		panic(fmt.Sprintf("telemetry: duplicate instrument %s", id))
	}
	for _, other := range r.insts {
		if other.desc.name == inst.desc.name && other.kind != inst.kind {
			panic(fmt.Sprintf("telemetry: %s registered as both %s and %s",
				inst.desc.name, other.kind, inst.kind))
		}
	}
	r.byID[id] = inst
	r.insts = append(r.insts, inst)
	sort.SliceStable(r.insts, func(i, j int) bool {
		a, b := r.insts[i].desc, r.insts[j].desc
		if a.name != b.name {
			return a.name < b.name
		}
		return labelString(a.labels) < labelString(b.labels)
	})
}

// NewCounter registers and returns a striped counter.
func (r *Registry) NewCounter(o Opts) *Counter {
	c := &Counter{desc: o.desc()}
	r.register(&instrument{desc: c.desc, kind: kindCounter, counter: c})
	return c
}

// NewGauge registers and returns a settable gauge.
func (r *Registry) NewGauge(o Opts) *Gauge {
	g := &Gauge{desc: o.desc()}
	r.register(&instrument{desc: g.desc, kind: kindGauge, gauge: g})
	return g
}

// NewCounterFunc registers a counter whose value is read from f at
// scrape time — for monotone totals that already live elsewhere
// (cache hit counts, tsdb sample counts).
func (r *Registry) NewCounterFunc(o Opts, f func() uint64) {
	r.register(&instrument{desc: o.desc(), kind: kindCounter, counterFunc: f})
}

// NewGaugeFunc registers a gauge whose value is read from f at scrape
// time — for levels that already live elsewhere (live sessions, queue
// depths).
func (r *Registry) NewGaugeFunc(o Opts, f func() float64) {
	r.register(&instrument{desc: o.desc(), kind: kindGauge, gaugeFunc: f})
}

// NewHistogram registers and returns a log-linear-bucket histogram
// recording raw int64 values.
func (r *Registry) NewHistogram(o Opts) *Histogram {
	h := newHistogram(o.desc(), 1)
	r.register(&instrument{desc: h.desc, kind: kindHistogram, hist: h})
	return h
}

// NewLatencyHistogram registers a histogram recording nanosecond
// durations, exposed in Prometheus output in seconds (the convention
// for *_seconds families). Wire summaries stay in nanoseconds.
func (r *Registry) NewLatencyHistogram(o Opts) *Histogram {
	h := newHistogram(o.desc(), 1e-9)
	r.register(&instrument{desc: h.desc, kind: kindHistogram, hist: h})
	return h
}

// snapshot copies the instrument list for lock-free iteration during
// exposition. Instruments are append-only, so the copy stays valid.
func (r *Registry) snapshot() []*instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*instrument(nil), r.insts...)
}

// Summaries returns the quantile summary of every keyed histogram with
// at least one observation — the compact per-op latency view that
// rides the wire STATS op (values in the histogram's raw unit,
// nanoseconds for latency histograms).
func (r *Registry) Summaries() map[string]Summary {
	out := make(map[string]Summary)
	for _, inst := range r.snapshot() {
		if inst.kind != kindHistogram || inst.desc.key == "" {
			continue
		}
		if sum := inst.hist.Summary(); sum.Count > 0 {
			out[inst.desc.key] = sum
		}
	}
	return out
}

// Since returns the nanoseconds elapsed since t0 — the unit every
// latency histogram records.
func Since(t0 time.Time) int64 { return int64(time.Since(t0)) }
