// The admin HTTP surface: /metrics (Prometheus text), /statusz (JSON),
// and /debug/pprof (the runtime profiler) on one mux. papid mounts it
// on a dedicated -http listener, kept off the wire-protocol port so a
// scraper can never confuse a JSON-lines peer and vice versa.
package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability mux.
//
// statusz, when non-nil, supplies the top-level /statusz document
// (typically the daemon's Stats view plus uptime); the registry's
// metrics are embedded under its "metrics" key. With a nil statusz,
// /statusz is the metrics array alone.
//
// The pprof handlers are mounted explicitly rather than through
// net/http/pprof's DefaultServeMux side effect, so importing telemetry
// never silently adds debug endpoints to an unrelated mux.
func Handler(reg *Registry, statusz func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if statusz == nil {
			reg.WriteJSON(w)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(statusz())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(`<html><body><h1>papid</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/statusz">/statusz</a> — JSON status document</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
</ul></body></html>`))
	})
	return mux
}
