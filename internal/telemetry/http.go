// The admin HTTP surface: /metrics (Prometheus text), /statusz (JSON),
// and /debug/pprof (the runtime profiler) on one mux. papid mounts it
// on a dedicated -http listener, kept off the wire-protocol port so a
// scraper can never confuse a JSON-lines peer and vice versa.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sort"
	"time"
)

// processStart anchors BuildInfo.Uptime. Package init is close enough
// to process start for an admin page.
var processStart = time.Now()

// BuildInfo identifies the running binary: what was built, from which
// revision, and how long it has been up. It answers the 3am question
// "what is actually deployed here?" that a metrics-only /statusz
// could not.
type BuildInfo struct {
	GoVersion  string    `json:"go_version"`
	Path       string    `json:"path,omitempty"`
	Version    string    `json:"version,omitempty"`
	VCSRev     string    `json:"vcs_revision,omitempty"`
	VCSTime    string    `json:"vcs_time,omitempty"`
	VCSDirty   bool      `json:"vcs_dirty,omitempty"`
	OS         string    `json:"os"`
	Arch       string    `json:"arch"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Start      time.Time `json:"start"`
	Uptime     string    `json:"uptime"`
}

// ReadBuild collects the binary's build identity from
// runtime/debug.ReadBuildInfo plus the runtime.
func ReadBuild() BuildInfo {
	bi := BuildInfo{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Start:      processStart,
		Uptime:     time.Since(processStart).Round(time.Second).String(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		bi.Path = info.Main.Path
		bi.Version = info.Main.Version
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				bi.VCSRev = s.Value
			case "vcs.time":
				bi.VCSTime = s.Value
			case "vcs.modified":
				bi.VCSDirty = s.Value == "true"
			}
		}
	}
	return bi
}

// Handler returns the observability mux.
//
// statusz, when non-nil, supplies the top-level /statusz document
// (typically the daemon's Stats view plus uptime); the registry's
// metrics are embedded under its "metrics" key. With a nil statusz,
// /statusz serves the build identity and the metrics array.
//
// The pprof handlers are mounted explicitly rather than through
// net/http/pprof's DefaultServeMux side effect, so importing telemetry
// never silently adds debug endpoints to an unrelated mux.
func Handler(reg *Registry, statusz func() any) http.Handler {
	return HandlerWith(reg, statusz, nil)
}

// HandlerWith is Handler plus extra handlers mounted by path (papid
// adds the /tracez flight recorder and /debug/trace export). Extra
// paths are linked from the index page.
func HandlerWith(reg *Registry, statusz func() any, extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if statusz == nil {
			enc.Encode(struct {
				Build   BuildInfo `json:"build"`
				Metrics any       `json:"metrics"`
			}{ReadBuild(), reg.MetricsJSON()})
			return
		}
		enc.Encode(statusz())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extraPaths := make([]string, 0, len(extra))
	for path, h := range extra {
		mux.Handle(path, h)
		extraPaths = append(extraPaths, path)
	}
	sort.Strings(extraPaths)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(`<html><body><h1>papid</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/statusz">/statusz</a> — JSON status document</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
`))
		for _, path := range extraPaths {
			fmt.Fprintf(w, "<li><a href=%q>%s</a></li>\n", path, path)
		}
		w.Write([]byte(`</ul></body></html>`))
	})
	return mux
}
