package telemetry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// scrape renders reg as Prometheus text and parses it back into
// header lines and sample values — a minimal format-0.0.4 parser that
// doubles as the format check.
func scrape(t *testing.T, reg *Registry) (types map[string]string, samples map[string]float64) {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	types = make(map[string]string)
	samples = make(map[string]float64)
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample line %q: %v", line, err)
		}
		if _, dup := samples[line[:sp]]; dup {
			t.Fatalf("duplicate sample %q", line[:sp])
		}
		samples[line[:sp]] = v
	}
	return types, samples
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter(Opts{Name: "papid_frames_sent_total", Help: "frames", Labels: []Label{{"codec", "json"}}})
	c2 := reg.NewCounter(Opts{Name: "papid_frames_sent_total", Labels: []Label{{"codec", "binary"}}})
	g := reg.NewGauge(Opts{Name: "papid_sessions", Help: "live sessions"})
	reg.NewCounterFunc(Opts{Name: "papid_cache_hits_total"}, func() uint64 { return 42 })
	reg.NewGaugeFunc(Opts{Name: "papid_uptime_seconds"}, func() float64 { return 1.5 })
	h := reg.NewLatencyHistogram(Opts{Name: "papid_op_latency_seconds", Help: "per-op latency", Key: "op/READ/json"})

	c.Add(7)
	c2.Inc()
	g.Set(3)
	h.Observe(2_000_000_000) // 2s in ns
	h.Observe(5)             // 5ns

	types, samples := scrape(t, reg)
	wantTypes := map[string]string{
		"papid_frames_sent_total":  "counter",
		"papid_sessions":           "gauge",
		"papid_cache_hits_total":   "counter",
		"papid_uptime_seconds":     "gauge",
		"papid_op_latency_seconds": "histogram",
	}
	for fam, kind := range wantTypes {
		if types[fam] != kind {
			t.Errorf("family %s: TYPE %q, want %q", fam, types[fam], kind)
		}
	}
	if v := samples[`papid_frames_sent_total{codec="json"}`]; v != 7 {
		t.Errorf("labeled counter = %v, want 7", v)
	}
	if v := samples[`papid_frames_sent_total{codec="binary"}`]; v != 1 {
		t.Errorf("labeled counter = %v, want 1", v)
	}
	if v := samples["papid_sessions"]; v != 3 {
		t.Errorf("gauge = %v, want 3", v)
	}
	if v := samples["papid_cache_hits_total"]; v != 42 {
		t.Errorf("counter func = %v, want 42", v)
	}
	if v := samples["papid_uptime_seconds"]; v != 1.5 {
		t.Errorf("gauge func = %v, want 1.5", v)
	}
	// Histogram: +Inf bucket == _count == 2; _sum scaled into seconds.
	if v := samples[`papid_op_latency_seconds_bucket{le="+Inf"}`]; v != 2 {
		t.Errorf("+Inf bucket = %v, want 2", v)
	}
	if v := samples["papid_op_latency_seconds_count"]; v != 2 {
		t.Errorf("_count = %v, want 2", v)
	}
	if v := samples["papid_op_latency_seconds_sum"]; v < 2.0 || v > 2.001 {
		t.Errorf("_sum = %v, want ~2.000000005 seconds", v)
	}
	// Cumulative buckets are monotone in le order, and every occupied
	// bucket's le is a finite second value.
	var bounds []float64
	cums := map[float64]float64{}
	for key, v := range samples {
		if !strings.HasPrefix(key, `papid_op_latency_seconds_bucket{le="`) || strings.Contains(key, "+Inf") {
			continue
		}
		le, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(key, `papid_op_latency_seconds_bucket{le="`), `"}`), 64)
		if err != nil {
			t.Fatalf("bucket key %q: %v", key, err)
		}
		bounds = append(bounds, le)
		cums[le] = v
	}
	if len(bounds) != 2 {
		t.Fatalf("want 2 occupied buckets, got %v", bounds)
	}
	lo, hi := bounds[0], bounds[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if cums[lo] > cums[hi] {
		t.Errorf("cumulative counts not monotone: le=%g has %g, le=%g has %g", lo, cums[lo], hi, cums[hi])
	}
}

func TestSummariesKeyedOnly(t *testing.T) {
	reg := NewRegistry()
	keyed := reg.NewHistogram(Opts{Name: "a", Key: "op/READ/json"})
	unkeyed := reg.NewHistogram(Opts{Name: "b"})
	empty := reg.NewHistogram(Opts{Name: "c", Key: "tick"})
	_ = empty
	keyed.Observe(10)
	unkeyed.Observe(10)
	s := reg.Summaries()
	if len(s) != 1 {
		t.Fatalf("Summaries() = %v, want just the keyed+observed one", s)
	}
	if got := s["op/READ/json"]; got.Count != 1 || got.Max != 10 {
		t.Errorf("summary = %+v", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter(Opts{Name: "x", Labels: []Label{{"a", "1"}}})
	// Same name, different labels: fine.
	reg.NewCounter(Opts{Name: "x", Labels: []Label{{"a", "2"}}})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate (name, labels) did not panic")
			}
		}()
		reg.NewCounter(Opts{Name: "x", Labels: []Label{{"a", "1"}}})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind clash within a family did not panic")
			}
		}()
		reg.NewGauge(Opts{Name: "x", Labels: []Label{{"a", "3"}}})
	}()
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter(Opts{Name: "c_total", Labels: []Label{{"k", "v"}}}).Add(9)
	reg.NewHistogram(Opts{Name: "h"}).Observe(100)
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc []JSONMetric
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("statusz body is not JSON: %v\n%s", err, sb.String())
	}
	if len(doc) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc[0].Name != "c_total" || doc[0].Value != 9 || doc[0].Labels["k"] != "v" {
		t.Errorf("counter metric = %+v", doc[0])
	}
	if doc[1].Hist == nil || doc[1].Hist.Count != 1 || doc[1].Hist.Max != 100 {
		t.Errorf("histogram metric = %+v", doc[1])
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter(Opts{Name: "papid_ticks_total"}).Inc()
	h := Handler(reg, func() any { return map[string]int{"sessions": 2} })

	get := func(path string) (int, string, string) {
		req := httptest.NewRequest("GET", path, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		return rw.Code, rw.Header().Get("Content-Type"), rw.Body.String()
	}
	if code, ct, body := get("/metrics"); code != 200 ||
		!strings.HasPrefix(ct, "text/plain; version=0.0.4") ||
		!strings.Contains(body, "papid_ticks_total 1") {
		t.Errorf("/metrics: %d %q %q", code, ct, body)
	}
	if code, ct, body := get("/statusz"); code != 200 ||
		!strings.HasPrefix(ct, "application/json") ||
		!strings.Contains(body, `"sessions": 2`) {
		t.Errorf("/statusz: %d %q %q", code, ct, body)
	}
	if code, _, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d %q", code, body)
	}
	if code, _, _ := get("/nonsense"); code != 404 {
		t.Errorf("/nonsense: %d, want 404", code)
	}
	if code, _, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: %d %q", code, body)
	}
}

func TestLogfBridge(t *testing.T) {
	var lines []string
	logger := NewLogfLogger(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}, slog.LevelInfo)
	logger = logger.With("conn", 7)
	logger.Info("papid: slow op", "op", "READ", "dur", "300ms")
	logger.Debug("suppressed")
	if len(lines) != 1 {
		t.Fatalf("lines = %q", lines)
	}
	for _, want := range []string{"papid: slow op", "conn=7", "op=READ", "dur=300ms"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line %q lacks %q", lines[0], want)
		}
	}
	// Groups qualify keys.
	lines = nil
	g := NewLogfLogger(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}, slog.LevelInfo).WithGroup("wire")
	g.Warn("msg", "op", "READ")
	if len(lines) != 1 || !strings.Contains(lines[0], "wire.op=READ") {
		t.Errorf("grouped line = %q", lines)
	}
	// Discard never panics and is disabled at every level.
	Discard().Error("dropped", "k", "v")
}

func TestFormatSummaryTable(t *testing.T) {
	hists := map[string]Summary{
		"op/READ/json": {Count: 10, P50: 30_000, P90: 60_000, P99: 100_000, Max: 120_000},
		"tick":         {Count: 3, P50: 1000, P90: 2000, P99: 2000, Max: 2500},
	}
	table := FormatSummaryTable(hists, nil)
	if !strings.Contains(table, "op/READ/json") || !strings.Contains(table, "tick") {
		t.Errorf("table lacks keys:\n%s", table)
	}
	if !strings.Contains(table, "30.0") { // 30_000ns = 30.0µs
		t.Errorf("table lacks µs-scaled p50:\n%s", table)
	}
	only := FormatSummaryTable(hists, func(k string) bool { return strings.HasPrefix(k, "op/") })
	if strings.Contains(only, "tick") {
		t.Errorf("filter kept excluded key:\n%s", only)
	}
	if got := FormatSummaryTable(nil, nil); got != "" {
		t.Errorf("empty table = %q", got)
	}
}
