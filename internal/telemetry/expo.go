// Exposition: the registry rendered as Prometheus text format
// (/metrics) and as a JSON document (/statusz). Both are relaxed
// point-in-time reads — instruments keep recording while a scrape is
// in flight.
package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
)

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family,
// then one line per sample, with histogram buckets cumulative and
// +Inf-terminated. Families are emitted in sorted name order so
// successive scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for _, inst := range r.snapshot() {
		if inst.desc.name != prevFamily {
			prevFamily = inst.desc.name
			if inst.desc.help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(inst.desc.name)
				bw.WriteByte(' ')
				bw.WriteString(inst.desc.help)
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(inst.desc.name)
			bw.WriteByte(' ')
			bw.WriteString(inst.kind.String())
			bw.WriteByte('\n')
		}
		labels := labelString(inst.desc.labels)
		switch inst.kind {
		case kindCounter:
			v := uint64(0)
			if inst.counter != nil {
				v = inst.counter.Value()
			} else {
				v = inst.counterFunc()
			}
			bw.WriteString(inst.desc.name)
			bw.WriteString(labels)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(v, 10))
			bw.WriteByte('\n')
		case kindGauge:
			var v float64
			if inst.gauge != nil {
				v = float64(inst.gauge.Value())
			} else {
				v = inst.gaugeFunc()
			}
			bw.WriteString(inst.desc.name)
			bw.WriteString(labels)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			bw.WriteByte('\n')
		case kindHistogram:
			writeHistogram(bw, inst.desc.name, inst.desc.labels, inst.hist)
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative _bucket/_sum/_count triplet for
// one histogram. Bucket bounds are scaled into the exposition unit
// (seconds for latency histograms); only occupied buckets plus the
// mandatory +Inf terminator are written, which keeps a 252-bucket
// layout from bloating every scrape.
func writeHistogram(bw *bufio.Writer, name string, labels []Label, h *Histogram) {
	h.forBuckets(func(upper int64, cum uint64) {
		bw.WriteString(name)
		bw.WriteString("_bucket")
		bw.WriteString(labelStringWith(labels, Label{Name: "le",
			Value: strconv.FormatFloat(float64(upper)*h.scale, 'g', -1, 64)}))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	})
	count := h.count.Load()
	bw.WriteString(name)
	bw.WriteString("_bucket")
	bw.WriteString(labelStringWith(labels, Label{Name: "le", Value: "+Inf"}))
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(count, 10))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_sum")
	bw.WriteString(labelString(labels))
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatFloat(float64(h.sum.Load())*h.scale, 'g', -1, 64))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	bw.WriteString(labelString(labels))
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(count, 10))
	bw.WriteByte('\n')
}

// labelStringWith renders labels plus one extra pair (the histogram
// "le" bound), keeping the fixed labels' sorted order and appending
// the extra last — Prometheus does not require sorted labels, only
// consistent ones.
func labelStringWith(labels []Label, extra Label) string {
	return labelString(append(append(make([]Label, 0, len(labels)+1), labels...), extra))
}

// JSONMetric is one instrument in the WriteJSON document.
type JSONMetric struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  float64           `json:"value,omitempty"`
	Hist   *Summary          `json:"hist,omitempty"`
}

// WriteJSON renders the registry as a JSON array of metrics — the
// machine-readable /statusz body. Histograms appear as quantile
// summaries (raw recording unit) rather than full bucket vectors.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.MetricsJSON())
}

// MetricsJSON returns WriteJSON's document as a value, for embedding
// in a larger /statusz body.
func (r *Registry) MetricsJSON() []JSONMetric {
	var doc []JSONMetric
	for _, inst := range r.snapshot() {
		m := JSONMetric{Name: inst.desc.name, Kind: inst.kind.String()}
		if len(inst.desc.labels) > 0 {
			m.Labels = make(map[string]string, len(inst.desc.labels))
			for _, l := range inst.desc.labels {
				m.Labels[l.Name] = l.Value
			}
		}
		switch inst.kind {
		case kindCounter:
			if inst.counter != nil {
				m.Value = float64(inst.counter.Value())
			} else {
				m.Value = float64(inst.counterFunc())
			}
		case kindGauge:
			if inst.gauge != nil {
				m.Value = float64(inst.gauge.Value())
			} else {
				m.Value = inst.gaugeFunc()
			}
		case kindHistogram:
			sum := inst.hist.Summary()
			m.Hist = &sum
		}
		doc = append(doc, m)
	}
	return doc
}
