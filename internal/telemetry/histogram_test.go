package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func testHist() *Histogram {
	return newHistogram(desc{name: "test"}, 1)
}

// TestBucketLayout pins the log-linear scheme: buckets tile int64
// without gaps or overlaps, the linear region is exact, and every
// log-linear bucket is narrow enough for the +25% quantile bound.
func TestBucketLayout(t *testing.T) {
	// Linear region: one value per bucket.
	for v := int64(0); v < linearMax; v++ {
		if got := bucketFor(v); got != int(v) {
			t.Errorf("bucketFor(%d) = %d, want %d", v, got, v)
		}
		if up := bucketUpper(int(v)); up != v {
			t.Errorf("bucketUpper(%d) = %d, want %d", v, up, v)
		}
	}
	// Buckets tile: lower(i) == upper(i-1)+1, lower <= upper.
	for i := 1; i < numBuckets; i++ {
		lo, up := bucketLower(i), bucketUpper(i)
		if lo != bucketUpper(i-1)+1 {
			t.Fatalf("bucket %d: lower %d != upper(prev)+1 %d", i, lo, bucketUpper(i-1)+1)
		}
		if up < lo {
			t.Fatalf("bucket %d: upper %d < lower %d", i, up, lo)
		}
		// Log-linear width bound: width <= lower/4 (sub-bucket of an
		// octave), which is what bounds quantile error at +25%.
		if i >= linearMax && up != math.MaxInt64 {
			if width := up - lo + 1; width > lo/4+1 {
				t.Errorf("bucket %d [%d,%d]: width %d exceeds lower/4", i, lo, up, width)
			}
		}
	}
	// bucketFor is consistent with the bounds, across magnitudes.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20000; trial++ {
		v := rng.Int63() >> uint(rng.Intn(63))
		b := bucketFor(v)
		if lo, up := bucketLower(b), bucketUpper(b); v < lo || v > up {
			t.Fatalf("bucketFor(%d) = %d, but bounds are [%d,%d]", v, b, lo, up)
		}
	}
	// Edges of the range.
	if b := bucketFor(math.MaxInt64); b != numBuckets-1 {
		t.Errorf("bucketFor(MaxInt64) = %d, want %d", b, numBuckets-1)
	}
	if bucketUpper(numBuckets-1) != math.MaxInt64 {
		t.Errorf("top bucket upper = %d, want MaxInt64", bucketUpper(numBuckets-1))
	}
	if b := bucketFor(-1); b != 0 {
		t.Errorf("bucketFor(-1) = %d, want clamp to 0", b)
	}
}

// bruteQuantile is the reference: the 1-based ceil(q*n)-th smallest.
func bruteQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQuantilesVsBruteForce checks the extracted quantiles against a
// sorted reference over several distributions: the histogram may
// overshoot by at most one bucket width (+25% relative, +1 absolute in
// the linear region) and never undershoot.
func TestQuantilesVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() int64{
		"uniform-small": func() int64 { return rng.Int63n(100) },
		"uniform-large": func() int64 { return rng.Int63n(1 << 40) },
		"log-uniform":   func() int64 { return int64(math.Exp(rng.Float64() * 30)) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 1_000_000 + rng.Int63n(1000)
			}
			return 100 + rng.Int63n(50)
		},
		"constant":      func() int64 { return 4242 },
		"linear-region": func() int64 { return rng.Int63n(linearMax) },
	}
	for name, draw := range distributions {
		h := testHist()
		vals := make([]int64, 5000)
		for i := range vals {
			vals[i] = draw()
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Summary()
		if s.Count != uint64(len(vals)) {
			t.Errorf("%s: count %d, want %d", name, s.Count, len(vals))
		}
		if s.Min != vals[0] || s.Max != vals[len(vals)-1] {
			t.Errorf("%s: min/max %d/%d, want %d/%d", name, s.Min, s.Max, vals[0], vals[len(vals)-1])
		}
		for _, qc := range []struct {
			q   float64
			got int64
		}{{0.50, s.P50}, {0.90, s.P90}, {0.99, s.P99}} {
			want := bruteQuantile(vals, qc.q)
			if qc.got < want {
				t.Errorf("%s p%d: %d undershoots true %d", name, int(qc.q*100), qc.got, want)
			}
			if limit := want + want/4 + 1; qc.got > limit {
				t.Errorf("%s p%d: %d exceeds +25%% bound %d (true %d)", name, int(qc.q*100), qc.got, limit, want)
			}
		}
	}
}

// TestHistogramNegativeClamp: a clock step must not corrupt the
// distribution — negatives land in bucket 0 and the summary stays
// internally consistent.
func TestHistogramNegativeClamp(t *testing.T) {
	h := testHist()
	h.Observe(-5)
	s := h.Summary()
	if s.Count != 1 || s.Min != -5 || s.Max != -5 || s.Sum != -5 {
		t.Errorf("summary after Observe(-5): %+v", s)
	}
	if s.P50 != -5 { // bucketUpper(0)=0 clamps to observed max
		t.Errorf("p50 = %d, want clamp to observed max -5", s.P50)
	}
}

// TestHistogramEmpty: the zero summary, and Summaries() omitting it.
func TestHistogramEmpty(t *testing.T) {
	h := testHist()
	if s := h.Summary(); s != (Summary{}) {
		t.Errorf("empty histogram summary: %+v", s)
	}
	if m := (Summary{}).Mean(); m != 0 {
		t.Errorf("empty Mean() = %v", m)
	}
}

// TestConcurrentRecording hammers one counter, one gauge, and one
// histogram from many goroutines; totals must be exact (run under
// -race this also proves the recording paths are data-race-free).
func TestConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter(Opts{Name: "c_total"})
	g := reg.NewGauge(Opts{Name: "g"})
	h := reg.NewHistogram(Opts{Name: "h", Key: "h"})
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	// Concurrent readers exercise the snapshot paths under -race.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = c.Value()
			_ = h.Summary()
			_ = reg.Summaries()
		}
	}()
	wg.Wait()
	<-done
	if v := c.Value(); v != workers*per {
		t.Errorf("counter = %d, want %d", v, workers*per)
	}
	if v := g.Value(); v != workers*per {
		t.Errorf("gauge = %d, want %d", v, workers*per)
	}
	if s := h.Summary(); s.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*per)
	}
}
