// Structured logging glue: papid logs through log/slog so every line
// carries machine-readable context (connection IDs, ops, durations),
// while the pre-slog Config.Logf hook keeps working — tests and
// embedders that capture printf-style lines see the same events,
// rendered.
package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strings"
)

// NewLogfLogger bridges a printf-style sink into a *slog.Logger:
// every record renders as "msg key=val key=val" through logf. It is
// how internal/server keeps its legacy Config.Logf contract while
// logging structurally inside.
func NewLogfLogger(logf func(format string, args ...any), level slog.Level) *slog.Logger {
	return slog.New(&logfHandler{logf: logf, level: level})
}

// Discard returns a logger that drops everything — the default for
// embedded servers that configured no sink.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

type logfHandler struct {
	logf  func(format string, args ...any)
	level slog.Level
	attrs []slog.Attr
	group string
}

func (h *logfHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level
}

func (h *logfHandler) Handle(_ context.Context, rec slog.Record) error {
	var sb strings.Builder
	sb.WriteString(rec.Message)
	emit := func(a slog.Attr) {
		if a.Key == "" {
			return
		}
		key := a.Key
		if h.group != "" {
			key = h.group + "." + key
		}
		fmt.Fprintf(&sb, " %s=%v", key, a.Value.Resolve().Any())
	}
	for _, a := range h.attrs {
		emit(a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		emit(a)
		return true
	})
	h.logf("%s", sb.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &nh
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	nh := *h
	if nh.group != "" {
		nh.group += "." + name
	} else {
		nh.group = name
	}
	return &nh
}

// FormatSummaryTable renders keyed histogram summaries as an aligned
// human-readable table, durations in microseconds — shared by
// `perfometer -stats`, `papirun -serve-stats`, and papid's shutdown
// report. Keys are emitted sorted; filter selects which keys appear
// (nil keeps all).
func FormatSummaryTable(hists map[string]Summary, filter func(key string) bool) string {
	keys := make([]string, 0, len(hists))
	for k := range hists {
		if filter == nil || filter(k) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %10s %10s %10s %10s %10s\n",
		"", "count", "p50(µs)", "p90(µs)", "p99(µs)", "max(µs)")
	for _, k := range keys {
		s := hists[k]
		fmt.Fprintf(&sb, "%-28s %10d %10.1f %10.1f %10.1f %10.1f\n",
			k, s.Count, float64(s.P50)/1e3, float64(s.P90)/1e3,
			float64(s.P99)/1e3, float64(s.Max)/1e3)
	}
	return sb.String()
}
