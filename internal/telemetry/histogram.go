// Log-linear-bucket histogram: fixed memory, lock-free recording,
// bounded relative error — the HDR-histogram shape, sized for latency
// distributions.
//
// The bucket layout in one paragraph: values 0..15 each get their own
// bucket (exact at the bottom, where a log scheme would waste
// resolution); above that, each power-of-two octave [2^k, 2^(k+1)) is
// split into 4 linear sub-buckets, so a bucket's width is at most 1/4
// of its lower bound and any reported quantile is within +25% of the
// true order statistic. 16 + 59*4 = 252 buckets cover the full int64
// range in 2 KiB of atomics; recording is one bits.Len64, one shift,
// and three atomic adds.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// linearMax is the exclusive upper bound of the one-value-per-bucket
// linear region.
const linearMax = 16

// subBits is log2 of the per-octave sub-bucket count.
const subBits = 2

// numBuckets covers int64: 16 linear + (63-4)*4 log-linear.
const numBuckets = linearMax + (63-4)<<subBits

// Histogram is a concurrent log-linear-bucket distribution. The zero
// value is not usable; histograms come from a Registry.
type Histogram struct {
	desc desc
	// scale converts recorded raw values into the exposition unit
	// (1e-9 for nanosecond recordings exposed as seconds).
	scale float64

	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

func newHistogram(d desc, scale float64) *Histogram {
	h := &Histogram{desc: d, scale: scale}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64) // so clamped negatives report their true max
	return h
}

// bucketFor maps a value to its bucket index. Negative values clamp
// into bucket 0 — durations are never negative, but a clock step must
// not corrupt the distribution.
func bucketFor(v int64) int {
	if v < linearMax {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // octave: 2^k <= v < 2^(k+1), k >= 4
	sub := int(v>>(uint(k)-subBits)) & (1<<subBits - 1)
	return linearMax + (k-4)<<subBits + sub
}

// bucketUpper returns the inclusive upper bound of bucket i — the
// value Quantile reports for ranks landing in it.
func bucketUpper(i int) int64 {
	if i < linearMax {
		return int64(i)
	}
	i -= linearMax
	k := uint(i>>subBits) + 4
	sub := int64(i&(1<<subBits-1)) + 1
	upper := int64(1)<<k + sub<<(k-subBits) - 1
	if upper < 0 { // top octave overflows; clamp
		return math.MaxInt64
	}
	return upper
}

// bucketLower returns the inclusive lower bound of bucket i.
func bucketLower(i int) int64 {
	if i == 0 {
		return math.MinInt64 // negative clamps land here
	}
	return bucketUpper(i-1) + 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Summary is the compact distribution view that rides the wire STATS
// op and the /statusz document: observation count, sum, extremes, and
// the standard latency quantiles, all in the histogram's raw recording
// unit (nanoseconds for latency histograms). Quantiles are bucket
// upper bounds — within +25% of the true order statistic, clamped to
// the observed max.
type Summary struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
}

// Mean returns Sum/Count, or 0 before any observation.
func (s Summary) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Summary extracts the quantile summary. Like every read of a live
// histogram it is a relaxed snapshot: observations racing the read may
// be partially included, which monitoring tolerates by construction.
func (h *Histogram) Summary() Summary {
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return Summary{}
	}
	s := Summary{Count: total, Sum: h.sum.Load(), Min: h.min.Load(), Max: h.max.Load()}
	s.P50 = quantile(&counts, total, 0.50, s.Max)
	s.P90 = quantile(&counts, total, 0.90, s.Max)
	s.P99 = quantile(&counts, total, 0.99, s.Max)
	return s
}

// quantile walks the cumulative bucket counts to the bucket holding
// the q-th order statistic and reports its upper bound, clamped to the
// observed maximum (the top occupied bucket's bound can overshoot the
// largest value actually recorded).
func quantile(counts *[numBuckets]uint64, total uint64, q float64, observedMax int64) int64 {
	// rank is 1-based: the ceil(q*total)-th smallest observation.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			v := bucketUpper(i)
			if v > observedMax {
				v = observedMax
			}
			return v
		}
	}
	return observedMax
}

// forBuckets visits the non-empty prefix of the cumulative
// distribution for exposition: every occupied bucket's (upperBound,
// cumulativeCount), in ascending order. The Prometheus writer turns
// these into _bucket{le=...} lines.
func (h *Histogram) forBuckets(visit func(upper int64, cum uint64)) {
	var cum uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		visit(bucketUpper(i), cum)
	}
}
