package telemetry

import (
	"io"
	"testing"
)

// BenchmarkTelemetryCounter measures the hot-path increment, serial
// and under full parallel contention — the case the stripes exist for.
func BenchmarkTelemetryCounter(b *testing.B) {
	reg := NewRegistry()
	c := reg.NewCounter(Opts{Name: "bench_total"})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
}

// BenchmarkTelemetryHistogram measures Observe — the per-request cost
// added to every wire op — and the scrape-time Summary extraction.
func BenchmarkTelemetryHistogram(b *testing.B) {
	reg := NewRegistry()
	h := reg.NewLatencyHistogram(Opts{Name: "bench_seconds", Key: "bench"})
	b.Run("observe-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i)*31 + 1000)
		}
	})
	b.Run("observe-parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			v := int64(1000)
			for pb.Next() {
				h.Observe(v)
				v += 31
			}
		})
	})
	b.Run("summary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s := h.Summary(); s.Count == 0 {
				b.Fatal("empty summary")
			}
		}
	})
}

// BenchmarkPrometheusScrape measures a full /metrics render of a
// registry shaped like papid's (a few dozen instruments).
func BenchmarkPrometheusScrape(b *testing.B) {
	reg := NewRegistry()
	for _, name := range []string{"a_total", "b_total", "c_total", "d_total"} {
		reg.NewCounter(Opts{Name: name}).Add(12345)
	}
	reg.NewGauge(Opts{Name: "g"}).Set(7)
	for _, name := range []string{"h1_seconds", "h2_seconds", "h3_seconds"} {
		h := reg.NewLatencyHistogram(Opts{Name: name, Key: name})
		for v := int64(100); v < 1_000_000_000; v *= 3 {
			h.Observe(v)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
