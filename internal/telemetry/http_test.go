package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

func TestHandlerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter(Opts{Name: "papid_http_test_total", Help: "test counter"})
	c.Add(3)
	rec := httptest.NewRecorder()
	Handler(reg, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "papid_http_test_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", rec.Body.String())
	}
}

func TestHandlerStatuszNil(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter(Opts{Name: "papid_http_statusz_total", Help: "x"}).Inc()
	rec := httptest.NewRecorder()
	Handler(reg, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/statusz content-type = %q", ct)
	}
	var doc struct {
		Build   BuildInfo    `json:"build"`
		Metrics []JSONMetric `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("nil-statusz body is not the build+metrics document: %v\n%s", err, rec.Body.String())
	}
	if doc.Build.GoVersion != runtime.Version() {
		t.Fatalf("build.go_version = %q, want %q", doc.Build.GoVersion, runtime.Version())
	}
	if doc.Build.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("build.gomaxprocs = %d, want %d", doc.Build.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if doc.Build.Uptime == "" || doc.Build.Start.IsZero() {
		t.Fatalf("build start/uptime missing: %+v", doc.Build)
	}
	found := false
	for _, m := range doc.Metrics {
		if m.Name == "papid_http_statusz_total" && m.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics array missing registered counter: %+v", doc.Metrics)
	}
}

func TestHandlerStatuszCustom(t *testing.T) {
	reg := NewRegistry()
	statusz := func() any {
		return map[string]any{"daemon": "papid", "build": ReadBuild()}
	}
	rec := httptest.NewRecorder()
	Handler(reg, statusz).ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/statusz content-type = %q", ct)
	}
	var doc struct {
		Daemon string    `json:"daemon"`
		Build  BuildInfo `json:"build"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Daemon != "papid" {
		t.Fatalf("custom statusz not served: %s", rec.Body.String())
	}
	if doc.Build.OS != runtime.GOOS || doc.Build.Arch != runtime.GOARCH {
		t.Fatalf("build os/arch = %s/%s, want %s/%s",
			doc.Build.OS, doc.Build.Arch, runtime.GOOS, runtime.GOARCH)
	}
}

func TestHandlerIndexLinks(t *testing.T) {
	reg := NewRegistry()
	rec := httptest.NewRecorder()
	Handler(reg, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("index content-type = %q", ct)
	}
	body := rec.Body.String()
	for _, link := range []string{`href="/metrics"`, `href="/statusz"`, `href="/debug/pprof/"`} {
		if !strings.Contains(body, link) {
			t.Errorf("index missing %s:\n%s", link, body)
		}
	}
	if strings.Contains(body, "/tracez") {
		t.Error("index links /tracez without an extra handler mounted")
	}

	// Unknown paths 404 rather than serving the index.
	rec = httptest.NewRecorder()
	Handler(reg, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/nonesuch", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /nonesuch = %d, want 404", rec.Code)
	}
}

func TestHandlerWithExtras(t *testing.T) {
	reg := NewRegistry()
	called := false
	extra := map[string]http.Handler{
		"/tracez": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			called = true
			w.Write([]byte("tracez here"))
		}),
	}
	h := HandlerWith(reg, nil, extra)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rec.Body.String(), `href="/tracez"`) {
		t.Fatalf("index missing extra link:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if !called || rec.Body.String() != "tracez here" {
		t.Fatal("extra handler not mounted")
	}
}

func TestReadBuild(t *testing.T) {
	bi := ReadBuild()
	if bi.GoVersion == "" || bi.OS == "" || bi.Arch == "" || bi.GOMAXPROCS < 1 {
		t.Fatalf("incomplete build info: %+v", bi)
	}
	// Under `go test` ReadBuildInfo is available, so the module path
	// should be populated.
	if bi.Path == "" {
		t.Fatalf("module path missing: %+v", bi)
	}
}
