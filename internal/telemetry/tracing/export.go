package tracing

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// TraceView is the exported (JSON) form of a finished trace.
type TraceView struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Name      string `json:"name"`
	StartUS   int64  `json:"start_us"`
	DurNS     int64  `json:"dur_ns"`
	Sampled   bool   `json:"sampled"`
	Retained  string `json:"retained"` // "sampled" | "slow" | "error"
	Err       string `json:"err,omitempty"`
	LostSpans int32  `json:"lost_spans,omitempty"`
	Spans     []Span `json:"spans"`
}

// View exports a finished trace. Calling View on a live trace is a
// race; only traces out of Snapshot/Get are safe.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	return TraceView{
		ID:        FormatID(t.id),
		Kind:      t.kind,
		Name:      t.name,
		StartUS:   t.wallUS,
		DurNS:     t.dur,
		Sampled:   t.sampled,
		Retained:  t.keptWhy,
		Err:       t.errMsg,
		LostSpans: t.lost,
		Spans:     t.spans,
	}
}

// Summary is the /tracez list entry for one retained trace.
type Summary struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Name     string `json:"name"`
	StartUS  int64  `json:"start_us"`
	DurNS    int64  `json:"dur_ns"`
	Spans    int    `json:"spans"`
	Retained string `json:"retained"`
	Err      string `json:"err,omitempty"`
}

// Summaries lists the retained traces, slowest first (the /tracez
// ordering: the trace you are hunting is almost always the slow one).
func (tr *Tracer) Summaries() []Summary {
	traces := tr.Snapshot()
	out := make([]Summary, 0, len(traces))
	for _, t := range traces {
		out = append(out, Summary{
			ID:       FormatID(t.id),
			Kind:     t.kind,
			Name:     t.name,
			StartUS:  t.wallUS,
			DurNS:    t.dur,
			Spans:    len(t.spans),
			Retained: t.keptWhy,
			Err:      t.errMsg,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].DurNS > out[j].DurNS })
	return out
}

// chromeEvent is one Chrome trace-event ("X" complete event), the
// format Perfetto and chrome://tracing load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeJSON renders the trace as Chrome trace-event JSON. Spans land
// on tracks by their "worker" annotation when present (so a parallel
// tick's shards render side by side); unannotated spans share track 0.
func (t *Trace) ChromeJSON() ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("no trace")
	}
	v := t.View()
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(v.Spans))}
	for _, sp := range v.Spans {
		ev := chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			TS:   float64(v.StartUS) + float64(sp.Start)/1e3,
			Dur:  float64(sp.Dur) / 1e3,
			PID:  1,
			Cat:  v.Kind,
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				if a.IsInt {
					ev.Args[a.Key] = a.Int
					if a.Key == "worker" {
						ev.TID = a.Int + 1
					}
				} else {
					ev.Args[a.Key] = a.Str
				}
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	return json.Marshal(doc)
}

// FormatDur renders a nanosecond duration for the /tracez table.
func FormatDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
