package tracing

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(Config{Sample: 1, Ring: 8})
	trc := tr.Start("tick", "tick")
	if trc == nil {
		t.Fatal("Start returned nil with tracing enabled")
	}
	if !trc.Detailed() {
		t.Fatal("sample=1 trace not detailed")
	}
	shard := trc.StartSpan(NoSpan, "shard")
	trc.AnnotateInt(shard, "shard", 3)
	snap := trc.StartSpan(shard, "snapshot")
	trc.Annotate(snap, "session", "7")
	trc.EndSpan(snap)
	trc.EndSpan(shard)
	id := trc.ID()
	tr.Finish(trc)

	got := tr.Get(id)
	if got == nil {
		t.Fatalf("retained trace %x not found", id)
	}
	v := got.View()
	if v.Retained != "sampled" {
		t.Fatalf("retained reason = %q, want sampled", v.Retained)
	}
	if len(v.Spans) != 3 {
		t.Fatalf("span count = %d, want 3 (root, shard, snapshot)", len(v.Spans))
	}
	if v.Spans[0].Parent != NoSpan || v.Spans[1].Parent != 0 || v.Spans[2].Parent != 1 {
		t.Fatalf("parent links wrong: %+v", v.Spans)
	}
	for i, sp := range v.Spans {
		if sp.Dur < 0 {
			t.Fatalf("span %d left open after Finish: %+v", i, sp)
		}
	}
	if v.Spans[1].Attrs[0].Key != "shard" || v.Spans[1].Attrs[0].Int != 3 {
		t.Fatalf("int annotation lost: %+v", v.Spans[1].Attrs)
	}
	if v.Spans[2].Attrs[0].Str != "7" {
		t.Fatalf("string annotation lost: %+v", v.Spans[2].Attrs)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := NewTracer(Config{Sample: 4, Ring: 64})
	for i := 0; i < 16; i++ {
		tr.Finish(tr.Start("request", "READ"))
	}
	if n := len(tr.Snapshot()); n != 4 {
		t.Fatalf("retained %d of 16 at 1/4 sampling, want 4", n)
	}
}

func TestTailRetentionSlow(t *testing.T) {
	tr := NewTracer(Config{Sample: 1 << 30, Slow: time.Microsecond, Ring: 8})
	trc := tr.Start("request", "READ")
	time.Sleep(50 * time.Microsecond)
	tr.Finish(trc)
	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("slow trace not tail-retained (got %d)", len(traces))
	}
	if v := traces[0].View(); v.Retained != "slow" {
		t.Fatalf("retained reason = %q, want slow", v.Retained)
	}
}

func TestTailRetentionError(t *testing.T) {
	tr := NewTracer(Config{Sample: 1 << 30, Ring: 8})
	trc := tr.Start("request", "READ")
	trc.SetError("no such session")
	tr.Finish(trc)
	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatal("error trace not tail-retained")
	}
	v := traces[0].View()
	if v.Retained != "error" || v.Err != "no such session" {
		t.Fatalf("retained=%q err=%q, want error / no such session", v.Retained, v.Err)
	}
	// Fast, unsampled, no-error traces are dropped.
	tr.Finish(tr.Start("request", "READ"))
	if n := len(tr.Snapshot()); n != 1 {
		t.Fatalf("boring trace retained (ring has %d)", n)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(Config{Sample: 1, Ring: 4})
	var ids []uint64
	for i := 0; i < 6; i++ {
		trc := tr.Start("tick", "tick")
		ids = append(ids, trc.ID())
		tr.Finish(trc)
	}
	traces := tr.Snapshot()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d, want 4", len(traces))
	}
	// Newest first.
	if traces[0].ID() != ids[5] || traces[3].ID() != ids[2] {
		t.Fatalf("snapshot order wrong: got first=%x last=%x", traces[0].ID(), traces[3].ID())
	}
	if tr.Get(ids[0]) != nil || tr.Get(ids[1]) != nil {
		t.Fatal("evicted traces still retrievable")
	}
}

func TestNilSafety(t *testing.T) {
	if NewTracer(Config{Sample: 0}) != nil {
		t.Fatal("Sample<=0 should disable tracing")
	}
	var tr *Tracer
	trc := tr.Start("tick", "tick")
	if trc != nil {
		t.Fatal("nil tracer returned a trace")
	}
	// All of these must be no-ops, not panics.
	sp := trc.StartSpan(NoSpan, "x")
	trc.Annotate(sp, "k", "v")
	trc.AnnotateInt(sp, "k", 1)
	trc.EndSpan(sp)
	trc.SetName("y")
	trc.SetError("e")
	if trc.ID() != 0 || trc.Detailed() {
		t.Fatal("nil trace has identity")
	}
	tr.Finish(trc)
	if tr.Snapshot() != nil || tr.Get(1) != nil {
		t.Fatal("nil tracer retained something")
	}
	if s := tr.TracerStats(); s.Started != 0 {
		t.Fatal("nil tracer counted")
	}
}

func TestPoolReuseResetsSpans(t *testing.T) {
	tr := NewTracer(Config{Sample: 1 << 30, Ring: 4})
	trc := tr.Start("request", "A")
	trc.StartSpan(NoSpan, "child")
	tr.Finish(trc) // dropped -> pooled
	again := tr.Start("request", "B")
	v := again.View()
	if len(v.Spans) != 1 || v.Spans[0].Name != "B" {
		t.Fatalf("pooled trace not reset: %+v", v.Spans)
	}
	tr.Finish(again)
}

func TestMaxSpansCap(t *testing.T) {
	tr := NewTracer(Config{Sample: 1, Ring: 2})
	trc := tr.Start("tick", "tick")
	for i := 0; i < maxSpans+10; i++ {
		trc.StartSpan(NoSpan, "s")
	}
	id := trc.ID()
	tr.Finish(trc)
	v := tr.Get(id).View()
	if len(v.Spans) != maxSpans {
		t.Fatalf("span cap not enforced: %d", len(v.Spans))
	}
	if v.LostSpans != 11 {
		t.Fatalf("lost spans = %d, want 11", v.LostSpans)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(Config{Sample: 1, Ring: 2})
	trc := tr.Start("tick", "tick")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := trc.StartSpan(NoSpan, "shard")
				trc.AnnotateInt(sp, "worker", int64(w))
				trc.EndSpan(sp)
			}
		}(w)
	}
	wg.Wait()
	id := trc.ID()
	tr.Finish(trc)
	if v := tr.Get(id).View(); len(v.Spans) != 1+8*50 {
		t.Fatalf("concurrent spans lost: %d", len(v.Spans))
	}
}

func TestFormatParseID(t *testing.T) {
	for _, id := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%d) = %q, want 16 hex chars", id, s)
		}
		got, ok := ParseID(s)
		if !ok || got != id {
			t.Fatalf("ParseID(FormatID(%d)) = %d, %v", id, got, ok)
		}
	}
	if _, ok := ParseID("xyz"); ok {
		t.Fatal("ParseID accepted garbage")
	}
	if _, ok := ParseID(""); ok {
		t.Fatal("ParseID accepted empty")
	}
	if _, ok := ParseID("00000000000000000"); ok {
		t.Fatal("ParseID accepted >16 chars")
	}
	if got, ok := ParseID("DEADBEEF"); !ok || got != 0xdeadbeef {
		t.Fatal("ParseID rejected uppercase")
	}
}

func TestSummariesSlowestFirst(t *testing.T) {
	tr := NewTracer(Config{Sample: 1, Ring: 8})
	fast := tr.Start("request", "fast")
	tr.Finish(fast)
	slow := tr.Start("request", "slow")
	time.Sleep(2 * time.Millisecond)
	tr.Finish(slow)
	sums := tr.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	if sums[0].Name != "slow" {
		t.Fatalf("slowest first ordering violated: %+v", sums)
	}
}

func TestChromeJSON(t *testing.T) {
	tr := NewTracer(Config{Sample: 1, Ring: 2})
	trc := tr.Start("tick", "tick")
	sp := trc.StartSpan(NoSpan, "shard")
	trc.AnnotateInt(sp, "worker", 2)
	trc.AnnotateInt(sp, "sessions", 9)
	trc.EndSpan(sp)
	id := trc.ID()
	tr.Finish(trc)

	data, err := tr.Get(id).ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[1]
	if ev["name"] != "shard" || ev["ph"] != "X" {
		t.Fatalf("bad event: %v", ev)
	}
	if ev["tid"].(float64) != 3 { // worker 2 -> tid 3
		t.Fatalf("worker annotation not mapped to tid: %v", ev)
	}
	if ev["args"].(map[string]any)["sessions"].(float64) != 9 {
		t.Fatalf("args lost: %v", ev)
	}
}

func TestHTTPHandlers(t *testing.T) {
	tr := NewTracer(Config{Sample: 1, Ring: 8})
	trc := tr.Start("request", "READ")
	trc.StartSpan(NoSpan, "dispatch")
	id := trc.ID()
	tr.Finish(trc)

	// /tracez HTML
	rec := httptest.NewRecorder()
	TracezHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("tracez HTML content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), FormatID(id)) {
		t.Fatal("tracez HTML missing trace ID")
	}

	// /tracez JSON
	rec = httptest.NewRecorder()
	TracezHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("tracez JSON content-type = %q", ct)
	}
	var list struct {
		Stats  Stats     `json:"stats"`
		Traces []Summary `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Stats.Started != 1 || len(list.Traces) != 1 || list.Traces[0].ID != FormatID(id) {
		t.Fatalf("tracez JSON wrong: %+v", list)
	}

	// /debug/trace native JSON
	rec = httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id="+FormatID(id), nil))
	var v TraceView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.ID != FormatID(id) || len(v.Spans) != 2 || v.Spans[1].Name != "dispatch" {
		t.Fatalf("trace JSON wrong: %+v", v)
	}

	// /debug/trace chrome export
	rec = httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id="+FormatID(id)+"&format=chrome", nil))
	if !strings.Contains(rec.Body.String(), `"traceEvents"`) {
		t.Fatal("chrome export missing traceEvents")
	}

	// Errors.
	rec = httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 400 {
		t.Fatalf("missing id -> %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id=ffffffffffffffff", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown id -> %d, want 404", rec.Code)
	}

	// Disabled tracer still serves a page rather than crashing.
	rec = httptest.NewRecorder()
	TracezHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if !strings.Contains(rec.Body.String(), "disabled") {
		t.Fatal("nil tracer tracez page should say disabled")
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr := NewTracer(Config{Sample: 1, Ring: 4})
	trc := tr.Start("tick", "tick")
	tr.Finish(trc)
	tr.Finish(trc)
	if n := len(tr.Snapshot()); n != 1 {
		t.Fatalf("double Finish inserted twice: ring has %d", n)
	}
	if st := tr.TracerStats(); st.Retained != 1 {
		t.Fatalf("retained counter = %d, want 1", st.Retained)
	}
}
