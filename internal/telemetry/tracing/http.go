package tracing

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"time"
)

// TracezHandler serves the /tracez flight-recorder view: the retained
// traces, slowest first. HTML by default, JSON with ?format=json (the
// form perfometer -tracez consumes).
func TracezHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sums := tr.Summaries()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct {
				Stats  Stats     `json:"stats"`
				Traces []Summary `json:"traces"`
			}{tr.TracerStats(), sums})
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<html><head><title>papid /tracez</title></head><body><h1>tracez</h1>")
		if tr == nil {
			fmt.Fprintf(w, "<p>tracing disabled (-trace-sample 0)</p></body></html>")
			return
		}
		st := tr.TracerStats()
		fmt.Fprintf(w, "<p>%d started, %d retained (%d slow, %d err) · sampling 1/%d · ring %d · slow threshold %s</p>",
			st.Started, st.Retained, st.KeptSlow, st.KeptErr, st.Sample, st.Ring,
			time.Duration(st.SlowNS))
		fmt.Fprintf(w, "<table border=1 cellpadding=4><tr><th>trace</th><th>kind</th><th>name</th><th>duration</th><th>spans</th><th>kept</th><th>err</th></tr>")
		for _, s := range sums {
			fmt.Fprintf(w, "<tr><td><a href=\"/debug/trace?id=%s\">%s</a></td><td>%s</td><td>%s</td><td align=right>%s</td><td align=right>%d</td><td>%s</td><td>%s</td></tr>",
				s.ID, s.ID, html.EscapeString(s.Kind), html.EscapeString(s.Name),
				FormatDur(s.DurNS), s.Spans, s.Retained, html.EscapeString(s.Err))
		}
		fmt.Fprintf(w, "</table></body></html>")
	})
}

// TraceHandler serves /debug/trace?id=<hex>: the full span tree of
// one retained trace. Native JSON by default; ?format=chrome returns
// Chrome trace-event JSON loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
func TraceHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, ok := ParseID(r.URL.Query().Get("id"))
		if !ok {
			http.Error(w, "trace: bad or missing ?id= (hex trace ID)", http.StatusBadRequest)
			return
		}
		t := tr.Get(id)
		if t == nil {
			http.Error(w, "trace: not retained (evicted from ring, or never kept)", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			data, err := t.ChromeJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%q", "trace-"+FormatID(id)+".json"))
			w.Write(data)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(t.View())
	})
}
