// Package tracing is papid's flight recorder: a low-overhead span
// engine that records where time goes inside the serving pipeline —
// which tick, which shard, which stage (snapshot, tsdb append, derive
// eval, encode, fan-out, WAL batch, fsync), which request.
//
// It is deliberately distinct from the paper-level internal/trace
// event log (which records *counter* activity for analysis); this
// package traces *papid itself*.
//
// The model is the usual span tree: a Trace is one traced unit (a
// tick, a wire request, a WAL batch) holding a flat slice of Spans;
// each span records a name, a parent (by index), a monotonic start
// offset, a duration, and optional key/value annotations. Spans are
// pooled with their trace, so steady-state tracing does not allocate
// once the pool is warm.
//
// Retention is head sampling plus tail retention: every unit is
// traced while tracing is enabled, but a finished trace is kept in
// the fixed-size ring only if it was head-sampled (1 in N), exceeded
// the slow threshold, or carried an error. The tail rule is what
// makes the recorder useful: the SlowOp warn line that fires at 3am
// names a trace ID that is still in the ring.
//
// All methods are nil-receiver safe: a disabled Tracer returns nil
// traces and every Span/Trace method on nil is a no-op, so call sites
// stay branchless.
package tracing

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRef names a span within its trace (an index into Trace.spans).
type SpanRef int32

// NoSpan is the nil SpanRef: annotating or ending it is a no-op, and
// a root span's Parent is NoSpan.
const NoSpan SpanRef = -1

// maxSpans bounds one trace's span count so a pathological tick (many
// thousands of sessions, all head-sampled) cannot hold the ring's
// memory hostage. Excess StartSpan calls return NoSpan and are
// counted in Trace.LostSpans.
const maxSpans = 4096

// Attr is one key/value annotation on a span. Exactly one of Str/Int
// is meaningful, per IsInt.
type Attr struct {
	Key   string `json:"key"`
	Str   string `json:"str,omitempty"`
	Int   int64  `json:"int,omitempty"`
	IsInt bool   `json:"is_int,omitempty"`
}

// Span is one timed region inside a trace. Start is a monotonic
// nanosecond offset from the trace's start; Dur is -1 while open.
type Span struct {
	Name   string  `json:"name"`
	Parent SpanRef `json:"parent"`
	Start  int64   `json:"start_ns"`
	Dur    int64   `json:"dur_ns"`
	Attrs  []Attr  `json:"attrs,omitempty"`
}

// Trace is one traced unit. Created by Tracer.Start, mutated through
// the Span methods (safe from concurrent goroutines — the tick's
// parallel sweep workers append spans to the same trace), sealed by
// Tracer.Finish. After Finish a retained trace is immutable and may
// be read without locks.
type Trace struct {
	id      uint64
	kind    string
	name    string
	sampled bool // head-sampled: retained unconditionally, traced in detail
	wallUS  int64
	t0      time.Time

	mu       sync.Mutex
	spans    []Span
	lost     int32
	errMsg   string
	hasErr   bool
	dur      int64
	finished atomic.Bool
	retained bool
	keptWhy  string
}

// ID returns the trace's identifier. IDs are rendered in hex (see
// FormatID) in log lines, replies and URLs. Immutable after Start, so
// callers may read it even after handing the trace off for Finish.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Detailed reports whether this trace was head-sampled. Call sites
// use it to gate high-cardinality instrumentation (per-session stage
// spans inside a tick) that would be wasteful on every tail-candidate
// trace; coarse spans (per-shard, per-request-stage) are recorded
// unconditionally so tail-retained slow traces still show structure.
func (t *Trace) Detailed() bool { return t != nil && t.sampled }

// SetName renames the trace's unit (the request op becomes known only
// after decode).
func (t *Trace) SetName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.name = name
	if len(t.spans) > 0 {
		t.spans[0].Name = name
	}
	t.mu.Unlock()
}

// SetError marks the trace failed, which forces tail retention at
// Finish. The first message wins.
func (t *Trace) SetError(msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.hasErr {
		t.hasErr = true
		t.errMsg = msg
	}
	t.mu.Unlock()
}

// StartSpan opens a child span under parent (NoSpan parents to the
// root) and returns its reference.
func (t *Trace) StartSpan(parent SpanRef, name string) SpanRef {
	if t == nil {
		return NoSpan
	}
	start := time.Since(t.t0).Nanoseconds()
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.lost++
		t.mu.Unlock()
		return NoSpan
	}
	if parent == NoSpan && len(t.spans) > 0 {
		parent = 0
	}
	ref := SpanRef(len(t.spans))
	t.spans = append(t.spans, Span{Name: name, Parent: parent, Start: start, Dur: -1})
	t.mu.Unlock()
	return ref
}

// EndSpan closes the span. Ending NoSpan or an already-closed span is
// a no-op.
func (t *Trace) EndSpan(ref SpanRef) {
	if t == nil || ref < 0 {
		return
	}
	end := time.Since(t.t0).Nanoseconds()
	t.mu.Lock()
	if int(ref) < len(t.spans) && t.spans[ref].Dur < 0 {
		t.spans[ref].Dur = end - t.spans[ref].Start
	}
	t.mu.Unlock()
}

// Annotate attaches a string annotation to the span (NoSpan targets
// the root).
func (t *Trace) Annotate(ref SpanRef, key, val string) {
	if t == nil {
		return
	}
	t.annotate(ref, Attr{Key: key, Str: val})
}

// AnnotateInt attaches an integer annotation to the span.
func (t *Trace) AnnotateInt(ref SpanRef, key string, val int64) {
	if t == nil {
		return
	}
	t.annotate(ref, Attr{Key: key, Int: val, IsInt: true})
}

func (t *Trace) annotate(ref SpanRef, a Attr) {
	t.mu.Lock()
	if ref < 0 {
		ref = 0
	}
	if int(ref) < len(t.spans) {
		t.spans[ref].Attrs = append(t.spans[ref].Attrs, a)
	}
	t.mu.Unlock()
}

// Config sizes a Tracer.
type Config struct {
	// Sample head-samples 1 in Sample traces for unconditional
	// retention and detailed instrumentation. <= 0 disables tracing
	// entirely (NewTracer returns nil).
	Sample int
	// Slow tail-retains any trace at least this slow. <= 0 disables
	// latency-based tail retention (errors still retain).
	Slow time.Duration
	// Ring is the number of retained traces kept. Defaults to 64.
	Ring int
}

// Tracer owns sampling state and the retention ring. A nil Tracer is
// valid and disabled: Start returns nil.
type Tracer struct {
	sample int
	slow   time.Duration

	seq atomic.Uint64 // head-sampling counter
	ids atomic.Uint64 // trace-ID allocator

	pool sync.Pool // *Trace

	mu   sync.Mutex
	ring []*Trace // retention ring; ring[head] is the oldest slot
	head int
	n    int

	started  atomic.Uint64
	retained atomic.Uint64
	keptSlow atomic.Uint64
	keptErr  atomic.Uint64
}

// NewTracer builds a Tracer, or returns nil (disabled) when
// cfg.Sample <= 0.
func NewTracer(cfg Config) *Tracer {
	if cfg.Sample <= 0 {
		return nil
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 64
	}
	tr := &Tracer{
		sample: cfg.Sample,
		slow:   cfg.Slow,
		ring:   make([]*Trace, cfg.Ring),
	}
	tr.pool.New = func() any { return &Trace{} }
	// Seed IDs from the wall clock so IDs from successive daemon runs
	// do not collide in operators' notes.
	tr.ids.Store(uint64(time.Now().UnixNano()) << 12)
	return tr
}

// Start begins a trace of one unit. kind groups traces in /tracez
// ("tick", "request", "wal"); name is the unit label (the op name, or
// "tick"). Returns nil when the tracer is disabled.
func (tr *Tracer) Start(kind, name string) *Trace {
	if tr == nil {
		return nil
	}
	t := tr.pool.Get().(*Trace)
	t.id = tr.ids.Add(1)
	t.kind = kind
	t.name = name
	t.sampled = tr.seq.Add(1)%uint64(tr.sample) == 0
	t.wallUS = time.Now().UnixMicro()
	t.t0 = time.Now()
	t.spans = append(t.spans[:0], Span{Name: name, Parent: NoSpan, Dur: -1})
	t.lost = 0
	t.hasErr = false
	t.errMsg = ""
	t.dur = 0
	t.retained = false
	t.keptWhy = ""
	t.finished.Store(false)
	tr.started.Add(1)
	return t
}

// Finish seals the trace: closes every still-open span, decides
// retention (head sample, slow, or error) and either inserts the
// trace into the ring or returns it to the pool. Finish is
// idempotent; only the first call acts. After calling Finish the
// caller must not touch the trace (beyond values copied out earlier,
// such as its ID).
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil || !t.finished.CompareAndSwap(false, true) {
		return
	}
	dur := time.Since(t.t0).Nanoseconds()
	t.mu.Lock()
	t.dur = dur
	for i := range t.spans {
		if t.spans[i].Dur < 0 {
			t.spans[i].Dur = dur - t.spans[i].Start
		}
	}
	why := ""
	switch {
	case t.hasErr:
		why = "error"
		tr.keptErr.Add(1)
	case tr.slow > 0 && dur >= tr.slow.Nanoseconds():
		why = "slow"
		tr.keptSlow.Add(1)
	case t.sampled:
		why = "sampled"
	}
	t.retained = why != ""
	t.keptWhy = why
	t.mu.Unlock()

	if !t.retained {
		// Not worth keeping: recycle the span storage.
		tr.pool.Put(t)
		return
	}
	tr.retained.Add(1)
	tr.mu.Lock()
	// Evicted traces are dropped on the floor for the GC — retained
	// traces may still be referenced by an exporter, so they are
	// never pooled.
	tr.ring[tr.head] = t
	tr.head = (tr.head + 1) % len(tr.ring)
	if tr.n < len(tr.ring) {
		tr.n++
	}
	tr.mu.Unlock()
}

// Snapshot returns the retained traces, newest first. The traces are
// finished and immutable.
func (tr *Tracer) Snapshot() []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	out := make([]*Trace, 0, tr.n)
	for i := 0; i < tr.n; i++ {
		idx := (tr.head - 1 - i + len(tr.ring)) % len(tr.ring)
		if t := tr.ring[idx]; t != nil {
			out = append(out, t)
		}
	}
	tr.mu.Unlock()
	return out
}

// Get returns the retained trace with the given ID, or nil.
func (tr *Tracer) Get(id uint64) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, t := range tr.ring {
		if t != nil && t.id == id {
			return t
		}
	}
	return nil
}

// Stats is a point-in-time view of tracer counters, for metric
// registration and /statusz.
type Stats struct {
	Started  uint64 `json:"started"`
	Retained uint64 `json:"retained"`
	KeptSlow uint64 `json:"kept_slow"`
	KeptErr  uint64 `json:"kept_err"`
	Ring     int    `json:"ring"`
	Sample   int    `json:"sample"`
	SlowNS   int64  `json:"slow_ns"`
}

// TracerStats returns the tracer's counters; zero for a nil tracer.
func (tr *Tracer) TracerStats() Stats {
	if tr == nil {
		return Stats{}
	}
	tr.mu.Lock()
	ring := len(tr.ring)
	tr.mu.Unlock()
	return Stats{
		Started:  tr.started.Load(),
		Retained: tr.retained.Load(),
		KeptSlow: tr.keptSlow.Load(),
		KeptErr:  tr.keptErr.Load(),
		Ring:     ring,
		Sample:   tr.sample,
		SlowNS:   tr.slow.Nanoseconds(),
	}
}

// FormatID renders a trace ID the way logs, replies and URLs carry
// it: lowercase hex.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID parses FormatID's output (with or without leading zeros).
func ParseID(s string) (uint64, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	var id uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		id = id<<4 | d
	}
	return id, true
}
