package tracing

import (
	"testing"
	"time"
)

// BenchmarkTraceSpan is the per-span cost every instrumented stage
// pays: start + end on an unretained trace.
func BenchmarkTraceSpan(b *testing.B) {
	tr := NewTracer(Config{Sample: 1 << 30, Ring: 8})
	trc := tr.Start("bench", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := trc.StartSpan(NoSpan, "stage")
		trc.EndSpan(sp)
		if i%1024 == 0 {
			// Keep the span slice from growing past the cap mid-bench.
			trc.spans = trc.spans[:1]
		}
	}
	b.StopTimer()
	tr.Finish(trc)
}

// BenchmarkTraceStartFinish is the per-unit floor for an unsampled,
// unretained trace (the common case at 1/64 sampling): pool get, two
// clock reads, pool put.
func BenchmarkTraceStartFinish(b *testing.B) {
	tr := NewTracer(Config{Sample: 1 << 30, Ring: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Finish(tr.Start("request", "READ"))
	}
}

// BenchmarkTraceRingInsert is the retained path: every trace is
// head-sampled, so each Finish inserts into the ring.
func BenchmarkTraceRingInsert(b *testing.B) {
	tr := NewTracer(Config{Sample: 1, Ring: 128})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trc := tr.Start("request", "READ")
		sp := trc.StartSpan(NoSpan, "dispatch")
		trc.EndSpan(sp)
		tr.Finish(trc)
	}
}

// BenchmarkTraceAnnotate measures attaching one int annotation.
func BenchmarkTraceAnnotate(b *testing.B) {
	tr := NewTracer(Config{Sample: 1, Ring: 2, Slow: time.Hour})
	trc := tr.Start("bench", "bench")
	sp := trc.StartSpan(NoSpan, "stage")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trc.AnnotateInt(sp, "n", int64(i))
		if i%1024 == 0 {
			trc.spans[sp].Attrs = trc.spans[sp].Attrs[:0]
		}
	}
	b.StopTimer()
	tr.Finish(trc)
}
