package hwsim

import "fmt"

// OverflowHandler is invoked when a PMU register programmed with an
// overflow threshold crosses it. pc is the program-counter address the
// hardware reports — on out-of-order cores it is skidded several
// instructions past the instruction that caused the event. reg is the
// physical counter index that overflowed.
type OverflowHandler func(pc uint64, reg int)

// Domain selects which execution modes a counter observes, the model
// behind PAPI_set_domain: user-mode work (the program itself), kernel
// mode (system calls made on the program's behalf — here, the
// measurement library's charged overhead and interrupt handling), or
// both.
type Domain uint8

// Counting domains.
const (
	DomainUser Domain = 1 << iota
	DomainKernel
	DomainAll = DomainUser | DomainKernel
)

type pmuReg struct {
	armed     bool
	event     NativeEvent
	domain    Domain
	raw       uint64 // unwrapped count since last Reset
	threshold uint64 // overflow threshold; 0 disables overflow
	nextOvf   uint64 // next raw value at which an overflow fires
}

// PMU models the performance monitoring unit: a small file of counter
// registers, each programmable with one native event, an enable bit,
// and per-register overflow thresholds.
type PMU struct {
	arch      *Arch
	regs      []pmuReg
	running   bool
	widthMask uint64
	handler   OverflowHandler

	// bySignal[s] lists armed register indices whose event mask
	// contains signal s; rebuilt on every Program call. This keeps the
	// per-signal hot path a short slice walk.
	bySignal [NumSignals][]int
}

func newPMU(a *Arch) *PMU {
	var mask uint64
	if a.CounterWidth >= 64 {
		mask = ^uint64(0)
	} else {
		mask = uint64(1)<<a.CounterWidth - 1
	}
	return &PMU{arch: a, regs: make([]pmuReg, a.NumCounters), widthMask: mask}
}

// Program assigns native events to physical registers. assignments maps
// physical counter index to the native event counted there; registers
// not present are disarmed. Programming is rejected while counting.
func (p *PMU) Program(assignments map[int]NativeEvent) error {
	if p.running {
		return fmt.Errorf("hwsim: PMU busy: cannot program while counting")
	}
	for i := range p.regs {
		p.regs[i] = pmuReg{}
	}
	for idx, ev := range assignments {
		if idx < 0 || idx >= len(p.regs) {
			return fmt.Errorf("hwsim: counter index %d out of range (0..%d)", idx, len(p.regs)-1)
		}
		if ev.CounterMask&(1<<uint(idx)) == 0 {
			return fmt.Errorf("hwsim: event %s cannot be counted on counter %d (mask %#x)",
				ev.Name, idx, ev.CounterMask)
		}
		if p.regs[idx].armed {
			return fmt.Errorf("hwsim: counter %d assigned twice", idx)
		}
		p.regs[idx] = pmuReg{armed: true, event: ev, domain: DomainAll}
	}
	p.rebuild()
	return nil
}

func (p *PMU) rebuild() {
	for s := range p.bySignal {
		p.bySignal[s] = p.bySignal[s][:0]
	}
	for i := range p.regs {
		if !p.regs[i].armed {
			continue
		}
		for s := Signal(0); s < NumSignals; s++ {
			if p.regs[i].event.Signals.Has(s) {
				p.bySignal[s] = append(p.bySignal[s], i)
			}
		}
	}
}

// SetDomain restricts every armed register to the given counting
// domain. PAPI sets the domain per EventSet, which maps to all
// registers the set programs.
func (p *PMU) SetDomain(d Domain) {
	if d == 0 {
		d = DomainAll
	}
	for i := range p.regs {
		if p.regs[i].armed {
			p.regs[i].domain = d
		}
	}
}

// SetOverflow arms (threshold > 0) or disarms (threshold == 0) overflow
// interrupts on the physical register idx.
func (p *PMU) SetOverflow(idx int, threshold uint64) error {
	if idx < 0 || idx >= len(p.regs) {
		return fmt.Errorf("hwsim: counter index %d out of range", idx)
	}
	r := &p.regs[idx]
	r.threshold = threshold
	if threshold > 0 {
		r.nextOvf = r.raw + threshold
	} else {
		r.nextOvf = 0
	}
	return nil
}

// SetHandler installs the overflow interrupt handler.
func (p *PMU) SetHandler(h OverflowHandler) { p.handler = h }

// Start enables counting. Counter values are preserved (counting
// resumes; use Reset to zero).
func (p *PMU) Start() { p.running = true }

// Stop disables counting.
func (p *PMU) Stop() { p.running = false }

// Running reports whether the PMU is counting.
func (p *PMU) Running() bool { return p.running }

// Reset zeroes all counter registers and re-bases overflow thresholds.
func (p *PMU) Reset() {
	for i := range p.regs {
		p.regs[i].raw = 0
		if p.regs[i].threshold > 0 {
			p.regs[i].nextOvf = p.regs[i].threshold
		}
	}
}

// Read returns the current register value for physical counter idx, as
// the hardware exposes it: wrapped to the architecture's counter width.
func (p *PMU) Read(idx int) (uint64, error) {
	if idx < 0 || idx >= len(p.regs) {
		return 0, fmt.Errorf("hwsim: counter index %d out of range", idx)
	}
	return p.regs[idx].raw & p.widthMask, nil
}

// ReadAll returns the wrapped values of all physical counters.
func (p *PMU) ReadAll(dst []uint64) {
	for i := range p.regs {
		if i >= len(dst) {
			return
		}
		dst[i] = p.regs[i].raw & p.widthMask
	}
}

// WidthMask exposes the wrap mask; the machine-independent layer uses it
// to extend narrow hardware counters to 64 bits in software.
func (p *PMU) WidthMask() uint64 { return p.widthMask }

// add applies n occurrences of signal s to every armed register whose
// event includes s and whose domain admits the originating mode,
// returning a bitmask of registers that crossed their overflow
// thresholds.
func (p *PMU) add(s Signal, n uint64, mode Domain) uint32 {
	var ovf uint32
	for _, i := range p.bySignal[s] {
		r := &p.regs[i]
		if r.domain&mode == 0 {
			continue
		}
		r.raw += n
		if r.threshold > 0 && r.raw >= r.nextOvf {
			for r.raw >= r.nextOvf {
				r.nextOvf += r.threshold
			}
			ovf |= 1 << uint(i)
		}
	}
	return ovf
}
