package hwsim

import (
	"testing"
	"testing/quick"
)

func TestCacheConfigValid(t *testing.T) {
	cases := []struct {
		cfg CacheConfig
		ok  bool
	}{
		{CacheConfig{SizeBytes: 16 << 10, LineBytes: 32, Ways: 4}, true},
		{CacheConfig{SizeBytes: 0, LineBytes: 32, Ways: 4}, false},
		{CacheConfig{SizeBytes: 16 << 10, LineBytes: 48, Ways: 4}, false}, // non-power-of-two line
		{CacheConfig{SizeBytes: 24 << 10, LineBytes: 32, Ways: 4}, false}, // non-power-of-two sets
		{CacheConfig{SizeBytes: 96 << 10, LineBytes: 64, Ways: 3}, true},  // 512 sets
		{CacheConfig{SizeBytes: 16 << 10, LineBytes: 32, Ways: 0}, false},
	}
	for _, c := range cases {
		if got := c.cfg.Valid(); got != c.ok {
			t.Errorf("Valid(%+v) = %v, want %v", c.cfg, got, c.ok)
		}
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := newCache(CacheConfig{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2})
	if c.access(0x1000) {
		t.Fatal("cold access should miss")
	}
	if !c.access(0x1000) {
		t.Fatal("second access to same line should hit")
	}
	if !c.access(0x101f) {
		t.Fatal("access within same 32-byte line should hit")
	}
	if c.access(0x1020) {
		t.Fatal("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 32B lines, 4 sets: size = 2*32*4 = 256B.
	c := newCache(CacheConfig{SizeBytes: 256, LineBytes: 32, Ways: 2})
	// Three lines mapping to set 0 (stride = sets*line = 128).
	a, b, d := uint64(0x1000), uint64(0x1080), uint64(0x1100)
	c.access(a)
	c.access(b)
	c.access(a) // a is now MRU
	c.access(d) // evicts b (LRU)
	if !c.access(a) {
		t.Fatal("a should still be resident")
	}
	if c.access(b) {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheCapacityWorkingSet(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 4 << 10, LineBytes: 64, Ways: 4}
	c := newCache(cfg)
	// Touch a working set equal to capacity twice: second pass all hits.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < uint64(cfg.SizeBytes); addr += 64 {
			c.access(0x10000 + addr)
		}
	}
	lines := uint64(cfg.SizeBytes / cfg.LineBytes)
	if c.misses != lines {
		t.Errorf("misses = %d, want %d (only cold misses)", c.misses, lines)
	}
	if c.accesses != 2*lines {
		t.Errorf("accesses = %d, want %d", c.accesses, 2*lines)
	}
}

func TestCacheStatsInvariant(t *testing.T) {
	// Property: misses <= accesses, and replaying any address sequence
	// after reset yields identical stats (determinism).
	f := func(addrs []uint16) bool {
		c := newCache(CacheConfig{SizeBytes: 512, LineBytes: 32, Ways: 2})
		run := func() (uint64, uint64) {
			c.reset()
			for _, a := range addrs {
				c.access(uint64(a))
			}
			return c.accesses, c.misses
		}
		a1, m1 := run()
		a2, m2 := run()
		return a1 == a2 && m1 == m2 && m1 <= a1 && a1 == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBHitMissAndLRU(t *testing.T) {
	tl := newTLB(2, 4096)
	if tl.access(0x0) {
		t.Fatal("cold TLB access should miss")
	}
	if !tl.access(0xfff) {
		t.Fatal("same page should hit")
	}
	tl.access(0x2000) // second entry
	if !tl.access(0x0) {
		t.Fatal("page 0 still resident")
	}
	tl.access(0x4000) // evicts LRU (0x2000)
	if tl.access(0x2000) {
		t.Fatal("page 0x2000 should have been evicted")
	}
}

func TestTLBPageZeroDistinguishable(t *testing.T) {
	// Address 0 maps to page 0; an empty entry must not alias it.
	tl := newTLB(4, 4096)
	if tl.access(0) {
		t.Fatal("first access to page 0 must miss even though entries are zeroed")
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	bp := newBranchPredictor(256)
	pc := uint64(0x400)
	// Always-taken branch: after warmup, always predicted correctly.
	miss := 0
	for i := 0; i < 100; i++ {
		if !bp.predict(pc, true) {
			miss++
		}
	}
	if miss > 2 {
		t.Errorf("always-taken branch mispredicted %d times, want <= 2", miss)
	}
}

func TestBranchPredictorAlternatingIsHard(t *testing.T) {
	bp := newBranchPredictor(256)
	pc := uint64(0x400)
	miss := 0
	for i := 0; i < 100; i++ {
		if !bp.predict(pc, i%2 == 0) {
			miss++
		}
	}
	if miss < 40 {
		t.Errorf("alternating branch mispredicted only %d/100 times; 2-bit counters should do badly", miss)
	}
}
