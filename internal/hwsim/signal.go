// Package hwsim simulates the performance-monitoring hardware that the
// PAPI paper's substrates talk to: a cycle-attributed CPU with caches, a
// TLB, a branch predictor, a PMU with a small set of physical counter
// registers, counter-overflow interrupts with out-of-order skid, and
// (on architectures that have it) a ProfileMe/EAR-style hardware
// sampling engine.
//
// The simulation is deterministic: given the same architecture, seed and
// instruction stream it produces identical counts, interrupts and
// samples on every run.
package hwsim

// Signal identifies a hardware event signal inside the simulated
// processor. Native events (the things a PMU register can be programmed
// to count) are defined per architecture as masks over these signals;
// a register programmed with a composite mask counts every occurrence
// of any signal in the mask.
type Signal uint8

// The complete set of signals a simulated core can raise. SigCycles is
// raised once per cycle; the rest are raised per qualifying instruction
// or per micro-event (cache miss, mispredict, ...).
const (
	SigCycles Signal = iota
	SigInstrs
	SigLoads
	SigStores
	SigIntOps
	SigFPAdd
	SigFPMul
	SigFPDiv
	SigFMA
	SigFPRound // precision-conversion/rounding instruction (POWER3 quirk)
	SigBranch
	SigBranchTaken
	SigBranchMiss
	SigL1DAccess
	SigL1DMiss
	SigL1IMiss
	SigL2Access
	SigL2Miss
	SigTLBDMiss
	SigStallCycles

	NumSignals // sentinel: number of distinct signals
)

var signalNames = [NumSignals]string{
	SigCycles:      "CYCLES",
	SigInstrs:      "INSTRS",
	SigLoads:       "LOADS",
	SigStores:      "STORES",
	SigIntOps:      "INT_OPS",
	SigFPAdd:       "FP_ADD",
	SigFPMul:       "FP_MUL",
	SigFPDiv:       "FP_DIV",
	SigFMA:         "FMA",
	SigFPRound:     "FP_ROUND",
	SigBranch:      "BRANCH",
	SigBranchTaken: "BRANCH_TAKEN",
	SigBranchMiss:  "BRANCH_MISS",
	SigL1DAccess:   "L1D_ACCESS",
	SigL1DMiss:     "L1D_MISS",
	SigL1IMiss:     "L1I_MISS",
	SigL2Access:    "L2_ACCESS",
	SigL2Miss:      "L2_MISS",
	SigTLBDMiss:    "TLB_D_MISS",
	SigStallCycles: "STALL_CYCLES",
}

// String returns the canonical upper-case name of the signal.
func (s Signal) String() string {
	if s < NumSignals {
		return signalNames[s]
	}
	return "SIG_UNKNOWN"
}

// SignalMask is a bitset of Signals. Bit i corresponds to Signal(i).
type SignalMask uint32

// Mask returns a SignalMask with the bits for the given signals set.
func Mask(sigs ...Signal) SignalMask {
	var m SignalMask
	for _, s := range sigs {
		m |= 1 << s
	}
	return m
}

// Has reports whether the mask contains signal s.
func (m SignalMask) Has(s Signal) bool { return m&(1<<s) != 0 }

// Signals expands the mask back into its member signals, in order.
func (m SignalMask) Signals() []Signal {
	var out []Signal
	for s := Signal(0); s < NumSignals; s++ {
		if m.Has(s) {
			out = append(out, s)
		}
	}
	return out
}

// String renders the mask as a "+"-joined list of signal names.
func (m SignalMask) String() string {
	sigs := m.Signals()
	if len(sigs) == 0 {
		return "NONE"
	}
	out := sigs[0].String()
	for _, s := range sigs[1:] {
		out += "+" + s.String()
	}
	return out
}
