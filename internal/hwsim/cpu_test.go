package hwsim

import "testing"

// fpLoop builds a simple straight-line kernel: nFP fp-adds, nLd loads
// walking an array, one backward branch; repeated iters times.
func fpLoop(iters, nFP, nLd int) []Instr {
	var out []Instr
	addr := uint64(0x400000)
	base := uint64(0x10000000)
	for it := 0; it < iters; it++ {
		pc := addr
		for i := 0; i < nFP; i++ {
			out = append(out, Instr{Op: OpFPAdd, Addr: pc})
			pc += InstrBytes
		}
		for i := 0; i < nLd; i++ {
			out = append(out, Instr{Op: OpLoad, Addr: pc, Mem: base + uint64(it*nLd+i)*8})
			pc += InstrBytes
		}
		out = append(out, Instr{Op: OpBranch, Addr: pc, Taken: it != iters-1})
	}
	return out
}

func TestCPUTruthCounts(t *testing.T) {
	a, _ := ArchByPlatform(PlatformCrayT3E)
	c := MustNewCPU(a, 1)
	const iters, nFP, nLd = 100, 4, 2
	c.Run(&SliceStream{Instrs: fpLoop(iters, nFP, nLd)})
	if got := c.Truth(SigFPAdd); got != iters*nFP {
		t.Errorf("FP adds = %d, want %d", got, iters*nFP)
	}
	if got := c.Truth(SigLoads); got != iters*nLd {
		t.Errorf("loads = %d, want %d", got, iters*nLd)
	}
	if got := c.Truth(SigBranch); got != iters {
		t.Errorf("branches = %d, want %d", got, iters)
	}
	if got := c.Truth(SigInstrs); got != iters*(nFP+nLd+1) {
		t.Errorf("instrs = %d, want %d", got, iters*(nFP+nLd+1))
	}
	if c.Retired() != c.Truth(SigInstrs) {
		t.Errorf("retired %d != instr signal %d", c.Retired(), c.Truth(SigInstrs))
	}
	if c.Cycles() == 0 || c.Cycles() < c.Retired() {
		t.Errorf("cycles %d implausible for %d instrs", c.Cycles(), c.Retired())
	}
}

func TestCPUPMUMatchesTruthWhileRunning(t *testing.T) {
	for _, platform := range Platforms() {
		a, _ := ArchByPlatform(platform)
		c := MustNewCPU(a, 2)
		// Find a native event counting plain instructions.
		var ev *NativeEvent
		for i := range a.Events {
			if a.Events[i].Signals == Mask(SigInstrs) {
				ev = &a.Events[i]
				break
			}
		}
		if ev == nil {
			t.Fatalf("%s: no pure instruction event", platform)
		}
		ctr := 0
		for ev.CounterMask&(1<<uint(ctr)) == 0 {
			ctr++
		}
		if err := c.PMU().Program(map[int]NativeEvent{ctr: *ev}); err != nil {
			t.Fatalf("%s: %v", platform, err)
		}
		before := c.Truth(SigInstrs)
		c.PMU().Start()
		c.Run(&SliceStream{Instrs: fpLoop(50, 3, 1)})
		c.PMU().Stop()
		got, _ := c.PMU().Read(ctr)
		want := c.Truth(SigInstrs) - before
		if got != want {
			t.Errorf("%s: pmu counted %d instrs, truth says %d", platform, got, want)
		}
	}
}

func TestCPUCountsNothingWhileStopped(t *testing.T) {
	a, _ := ArchByPlatform(PlatformLinuxX86)
	c := MustNewCPU(a, 3)
	ins, _ := a.EventByName("INST_RETIRED")
	if err := c.PMU().Program(map[int]NativeEvent{0: *ins}); err != nil {
		t.Fatal(err)
	}
	c.Run(&SliceStream{Instrs: fpLoop(10, 2, 0)})
	v, _ := c.PMU().Read(0)
	if v != 0 {
		t.Errorf("counted %d while stopped", v)
	}
}

func TestCPUOverflowExactOnInOrder(t *testing.T) {
	// Cray T3E is in-order with zero skid: the reported PC must always
	// be the address of an instruction that fires the event.
	a, _ := ArchByPlatform(PlatformCrayT3E)
	c := MustNewCPU(a, 4)
	fp, _ := a.EventByName("FP_INST")
	if err := c.PMU().Program(map[int]NativeEvent{1: *fp}); err != nil {
		t.Fatal(err)
	}
	instrs := fpLoop(200, 4, 2)
	fpAddrs := map[uint64]bool{}
	for _, in := range instrs {
		if in.Op == OpFPAdd {
			fpAddrs[in.Addr] = true
		}
	}
	var wrong int
	var fires int
	c.PMU().SetHandler(func(pc uint64, reg int) {
		fires++
		if !fpAddrs[pc] {
			wrong++
		}
	})
	c.PMU().SetOverflow(1, 16)
	c.PMU().Start()
	c.Run(&SliceStream{Instrs: instrs})
	if fires != 200*4/16 {
		t.Errorf("overflow fired %d times, want %d", fires, 200*4/16)
	}
	if wrong != 0 {
		t.Errorf("%d/%d overflow PCs did not point at FP instructions on a zero-skid core", wrong, fires)
	}
}

func TestCPUOverflowSkidsOnOOO(t *testing.T) {
	// linux-x86 skids 4..12 instructions: most reported PCs should NOT
	// be the FP instructions themselves.
	a, _ := ArchByPlatform(PlatformLinuxX86)
	c := MustNewCPU(a, 5)
	fl, _ := a.EventByName("FLOPS")
	if err := c.PMU().Program(map[int]NativeEvent{0: *fl}); err != nil {
		t.Fatal(err)
	}
	instrs := fpLoop(500, 2, 6) // FP instrs are a minority
	fpAddrs := map[uint64]bool{}
	for _, in := range instrs {
		if in.Op == OpFPAdd {
			fpAddrs[in.Addr] = true
		}
	}
	var onFP, fires int
	c.PMU().SetHandler(func(pc uint64, reg int) {
		fires++
		if fpAddrs[pc] {
			onFP++
		}
	})
	c.PMU().SetOverflow(0, 10)
	c.PMU().Start()
	c.Run(&SliceStream{Instrs: instrs})
	if fires == 0 {
		t.Fatal("no overflows fired")
	}
	if onFP*2 > fires {
		t.Errorf("%d/%d skidded interrupts still landed on FP instructions; skid model broken", onFP, fires)
	}
}

func TestCPUChargePerturbsRunningCounters(t *testing.T) {
	a, _ := ArchByPlatform(PlatformLinuxX86)
	c := MustNewCPU(a, 6)
	ins, _ := a.EventByName("INST_RETIRED")
	cyc, _ := a.EventByName("CPU_CLK_UNHALTED")
	if err := c.PMU().Program(map[int]NativeEvent{0: *ins, 1: *cyc}); err != nil {
		t.Fatal(err)
	}
	c.PMU().Start()
	c.Charge(1000, 300)
	i, _ := c.PMU().Read(0)
	cy, _ := c.PMU().Read(1)
	if i != 300 || cy != 1000 {
		t.Errorf("charge counted %d instrs / %d cycles, want 300/1000", i, cy)
	}
}

func TestCPUTimerFires(t *testing.T) {
	a, _ := ArchByPlatform(PlatformCrayT3E)
	c := MustNewCPU(a, 7)
	var ticks int
	c.SetTimer(1000, func() { ticks++ })
	c.Charge(10_500, 0)
	if ticks != 10 {
		t.Errorf("timer fired %d times over 10500 cycles at interval 1000, want 10", ticks)
	}
	c.SetTimer(0, nil)
	c.Charge(5000, 0)
	if ticks != 10 {
		t.Error("timer fired after removal")
	}
}

func TestCPUInterferenceStealsRealTime(t *testing.T) {
	a, _ := ArchByPlatform(PlatformLinuxX86)
	c := MustNewCPU(a, 8)
	c.SetInterference(1000, 250) // steal 250 cycles every 1000
	c.Charge(10_000, 0)
	if c.Cycles() != 10_000 {
		t.Errorf("virtual cycles = %d, want 10000", c.Cycles())
	}
	if c.RealCycles() != 10_000+10*250 {
		t.Errorf("real cycles = %d, want %d", c.RealCycles(), 10_000+10*250)
	}
}

func TestCPUSamplingConvergesAndIsExact(t *testing.T) {
	a, _ := ArchByPlatform(PlatformTru64Alpha)
	c := MustNewCPU(a, 9)
	var samples []Sample
	if err := c.ConfigureSampling(64, func(batch []Sample) {
		samples = append(samples, batch...)
	}); err != nil {
		t.Fatal(err)
	}
	instrs := fpLoop(20_000, 3, 2)
	fpAddrs := map[uint64]bool{}
	for _, in := range instrs {
		if in.Op == OpFPAdd {
			fpAddrs[in.Addr] = true
		}
	}
	c.Run(&SliceStream{Instrs: instrs})
	c.FlushSamples()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	// Exact attribution: every sample flagged FP must sit on an FP PC.
	var fpSamples, wrong int
	for _, s := range samples {
		if s.Signals.Has(SigFPAdd) {
			fpSamples++
			if !fpAddrs[s.PC] {
				wrong++
			}
		}
	}
	if wrong != 0 {
		t.Errorf("%d FP samples with non-FP PC; hardware sampling must be exact", wrong)
	}
	// Estimation: fpSamples * period should approximate true FP count.
	est := float64(fpSamples) * 64
	truth := float64(c.Truth(SigFPAdd))
	if rel := abs(est-truth) / truth; rel > 0.10 {
		t.Errorf("sampled FP estimate %.0f vs truth %.0f (rel err %.2f%%)", est, truth, rel*100)
	}
}

func TestCPUSamplingUnsupportedPlatform(t *testing.T) {
	a, _ := ArchByPlatform(PlatformLinuxX86)
	c := MustNewCPU(a, 10)
	if err := c.ConfigureSampling(64, nil); err == nil {
		t.Error("expected error: linux-x86 has no hardware sampling")
	}
}

func TestCPUDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		a, _ := ArchByPlatform(PlatformLinuxX86)
		c := MustNewCPU(a, 42)
		c.Run(&SliceStream{Instrs: fpLoop(1000, 3, 3)})
		return c.Cycles(), c.Truth(SigL1DMiss)
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", c1, m1, c2, m2)
	}
}

func TestCPUMemoryHierarchySignals(t *testing.T) {
	a, _ := ArchByPlatform(PlatformLinuxX86)
	c := MustNewCPU(a, 11)
	// Stream through 1 MiB: far beyond L1 (16K) and L2 (256K).
	var instrs []Instr
	for i := 0; i < 16384; i++ {
		instrs = append(instrs, Instr{Op: OpLoad, Addr: 0x400000, Mem: 0x2000000 + uint64(i)*64})
	}
	c.Run(&SliceStream{Instrs: instrs})
	if c.Truth(SigL1DMiss) == 0 || c.Truth(SigL2Miss) == 0 || c.Truth(SigTLBDMiss) == 0 {
		t.Errorf("streaming 1MiB produced L1DMiss=%d L2Miss=%d TLBMiss=%d; all should be nonzero",
			c.Truth(SigL1DMiss), c.Truth(SigL2Miss), c.Truth(SigTLBDMiss))
	}
	if c.Truth(SigL1DAccess) != 16384 {
		t.Errorf("L1D accesses = %d, want 16384", c.Truth(SigL1DAccess))
	}
	if c.Truth(SigL1DMiss) > c.Truth(SigL1DAccess) {
		t.Error("misses exceed accesses")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
