package hwsim

import (
	"testing"
	"testing/quick"
)

func testArch() *Arch { return archLinuxX86() }

func TestPMUProgramAndCount(t *testing.T) {
	a := testArch()
	p := newPMU(a)
	ins, _ := a.EventByName("INST_RETIRED")
	cyc, _ := a.EventByName("CPU_CLK_UNHALTED")
	if err := p.Program(map[int]NativeEvent{0: *ins, 1: *cyc}); err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.add(SigInstrs, 10, DomainAll)
	p.add(SigCycles, 25, DomainAll)
	v0, _ := p.Read(0)
	v1, _ := p.Read(1)
	if v0 != 10 || v1 != 25 {
		t.Errorf("counters = %d,%d want 10,25", v0, v1)
	}
	p.Stop()
	p.Reset()
	v0, _ = p.Read(0)
	if v0 != 0 {
		t.Errorf("after reset counter = %d", v0)
	}
}

func TestPMURejectsBadPlacement(t *testing.T) {
	a := testArch()
	p := newPMU(a)
	flops, _ := a.EventByName("FLOPS") // counter-0 only
	if err := p.Program(map[int]NativeEvent{1: *flops}); err == nil {
		t.Error("expected placement error for FLOPS on counter 1")
	}
	if err := p.Program(map[int]NativeEvent{5: *flops}); err == nil {
		t.Error("expected range error for counter 5")
	}
}

func TestPMURejectsProgramWhileRunning(t *testing.T) {
	a := testArch()
	p := newPMU(a)
	p.Start()
	ins, _ := a.EventByName("INST_RETIRED")
	if err := p.Program(map[int]NativeEvent{0: *ins}); err == nil {
		t.Error("expected busy error")
	}
}

func TestPMUCompositeEventCountsAllSignals(t *testing.T) {
	a := testArch()
	p := newPMU(a)
	flops, _ := a.EventByName("FLOPS")
	if err := p.Program(map[int]NativeEvent{0: *flops}); err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.add(SigFPAdd, 3, DomainAll)
	p.add(SigFPMul, 4, DomainAll)
	p.add(SigFPDiv, 1, DomainAll)
	p.add(SigFPRound, 7, DomainAll) // not part of FLOPS
	v, _ := p.Read(0)
	if v != 8 {
		t.Errorf("composite FLOPS = %d, want 8", v)
	}
}

func TestPMUWidthWrap(t *testing.T) {
	a := *testArch()
	a.CounterWidth = 20 // tiny counters: wrap at 2^20
	p := newPMU(&a)
	ins, _ := a.EventByName("INST_RETIRED")
	if err := p.Program(map[int]NativeEvent{0: *ins}); err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.add(SigInstrs, 1<<20+5, DomainAll)
	v, _ := p.Read(0)
	if v != 5 {
		t.Errorf("wrapped value = %d, want 5", v)
	}
	if p.WidthMask() != 1<<20-1 {
		t.Errorf("width mask = %#x", p.WidthMask())
	}
}

func TestPMUOverflowThreshold(t *testing.T) {
	a := testArch()
	p := newPMU(a)
	ins, _ := a.EventByName("INST_RETIRED")
	if err := p.Program(map[int]NativeEvent{1: *ins}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetOverflow(1, 100); err != nil {
		t.Fatal(err)
	}
	p.Start()
	var fires int
	for i := 0; i < 1000; i++ {
		if ovf := p.add(SigInstrs, 1, DomainAll); ovf != 0 {
			if ovf != 1<<1 {
				t.Fatalf("overflow mask = %#b, want bit 1", ovf)
			}
			fires++
		}
	}
	if fires != 10 {
		t.Errorf("overflow fired %d times over 1000 increments at threshold 100, want 10", fires)
	}
}

func TestPMUOverflowBulkIncrement(t *testing.T) {
	// A single add of many counts must advance nextOvf past the value,
	// firing once (hardware can't deliver multiple interrupts for a
	// single increment).
	a := testArch()
	p := newPMU(a)
	cyc, _ := a.EventByName("CPU_CLK_UNHALTED")
	if err := p.Program(map[int]NativeEvent{0: *cyc}); err != nil {
		t.Fatal(err)
	}
	p.SetOverflow(0, 10)
	p.Start()
	if ovf := p.add(SigCycles, 95, DomainAll); ovf != 1 {
		t.Fatalf("expected overflow on bulk add")
	}
	// Next overflow boundary should now be at 100.
	if ovf := p.add(SigCycles, 4, DomainAll); ovf != 0 {
		t.Error("premature overflow")
	}
	if ovf := p.add(SigCycles, 1, DomainAll); ovf != 1 {
		t.Error("missing overflow at 100")
	}
}

func TestPMUReadAllAndRangeErrors(t *testing.T) {
	a := testArch()
	p := newPMU(a)
	if _, err := p.Read(-1); err == nil {
		t.Error("expected range error")
	}
	if _, err := p.Read(2); err == nil {
		t.Error("expected range error")
	}
	if err := p.SetOverflow(9, 1); err == nil {
		t.Error("expected range error")
	}
	dst := make([]uint64, 2)
	p.ReadAll(dst)
}

func TestPMUCountsMatchManualSum(t *testing.T) {
	// Property: for any sequence of per-signal increments, a register's
	// value equals the sum of increments of signals in its mask
	// (modulo width).
	a := testArch()
	f := func(incs []uint8) bool {
		p := newPMU(a)
		ev, _ := a.EventByName("DATA_MEM_REFS") // loads+stores+L1D access
		if err := p.Program(map[int]NativeEvent{0: *ev}); err != nil {
			return false
		}
		p.Start()
		var want uint64
		for i, n := range incs {
			sig := Signal(i % int(NumSignals))
			p.add(sig, uint64(n), DomainAll)
			if ev.Signals.Has(sig) {
				want += uint64(n)
			}
		}
		got, _ := p.Read(0)
		return got == want&p.WidthMask()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPMUDomainFiltering(t *testing.T) {
	a := testArch()
	p := newPMU(a)
	ins, _ := a.EventByName("INST_RETIRED")
	if err := p.Program(map[int]NativeEvent{0: *ins}); err != nil {
		t.Fatal(err)
	}
	p.SetDomain(DomainUser)
	p.Start()
	p.add(SigInstrs, 100, DomainUser)
	p.add(SigInstrs, 40, DomainKernel)
	v, _ := p.Read(0)
	if v != 100 {
		t.Errorf("user-domain counter = %d, want 100", v)
	}
	p.Stop()
	// Kernel-only counting.
	p2 := newPMU(a)
	p2.Program(map[int]NativeEvent{0: *ins})
	p2.SetDomain(DomainKernel)
	p2.Start()
	p2.add(SigInstrs, 100, DomainUser)
	p2.add(SigInstrs, 40, DomainKernel)
	v, _ = p2.Read(0)
	if v != 40 {
		t.Errorf("kernel-domain counter = %d, want 40", v)
	}
	// Zero domain defaults to all.
	p2.Stop()
	p2.SetDomain(0)
	p2.Start()
	p2.add(SigInstrs, 1, DomainUser)
	v, _ = p2.Read(0)
	if v != 41 {
		t.Errorf("all-domain counter = %d, want 41", v)
	}
}
