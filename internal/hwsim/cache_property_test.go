package hwsim

import (
	"testing"
	"testing/quick"
)

// oracleCache is an obviously-correct set-associative LRU model built
// on maps and slices, used to model-check the packed-array cache.
type oracleCache struct {
	lineShift uint
	sets      int
	ways      int
	data      []map[uint64]int // per set: line → recency stamp
	clock     int
}

func newOracle(cfg CacheConfig) *oracleCache {
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	o := &oracleCache{lineShift: shift, sets: sets, ways: cfg.Ways, data: make([]map[uint64]int, sets)}
	for i := range o.data {
		o.data[i] = map[uint64]int{}
	}
	return o
}

func (o *oracleCache) access(addr uint64) bool {
	line := addr >> o.lineShift
	set := o.data[int(line)%o.sets]
	o.clock++
	if _, hit := set[line]; hit {
		set[line] = o.clock
		return true
	}
	if len(set) == o.ways {
		var lruLine uint64
		lru := int(^uint(0) >> 1)
		for l, stamp := range set {
			if stamp < lru {
				lru, lruLine = stamp, l
			}
		}
		delete(set, lruLine)
	}
	set[line] = o.clock
	return false
}

func TestCacheMatchesOracleModel(t *testing.T) {
	// Property: the production cache and the oracle agree on every
	// hit/miss outcome for any access sequence, across geometries.
	geoms := []CacheConfig{
		{SizeBytes: 256, LineBytes: 32, Ways: 1},
		{SizeBytes: 512, LineBytes: 32, Ways: 2},
		{SizeBytes: 1024, LineBytes: 64, Ways: 4},
		{SizeBytes: 768, LineBytes: 32, Ways: 3},
	}
	f := func(addrs []uint16, geomSel uint8) bool {
		cfg := geoms[int(geomSel)%len(geoms)]
		c := newCache(cfg)
		o := newOracle(cfg)
		for _, a := range addrs {
			if c.access(uint64(a)) != o.access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTLBMatchesOracleModel(t *testing.T) {
	// The fully-associative TLB is the one-set case of the oracle.
	f := func(addrs []uint16, entriesSel uint8) bool {
		entries := int(entriesSel%7) + 1
		tl := newTLB(entries, 4096)
		o := newOracle(CacheConfig{SizeBytes: entries * 4096, LineBytes: 4096, Ways: entries})
		for _, a := range addrs {
			if tl.access(uint64(a)) != o.access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
