package hwsim

// branchPredictor is a classic table of 2-bit saturating counters
// indexed by low PC bits. It is deliberately simple: the experiments
// only need a realistic mispredict *rate*, not a competition-grade
// predictor.
type branchPredictor struct {
	table []uint8 // 2-bit counters, 0..3; >=2 predicts taken
	mask  uint64
}

func newBranchPredictor(entries int) *branchPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("hwsim: predictor entries must be a positive power of two")
	}
	bp := &branchPredictor{table: make([]uint8, entries), mask: uint64(entries - 1)}
	for i := range bp.table {
		bp.table[i] = 1 // weakly not-taken
	}
	return bp
}

// predict consumes one branch at pc with the given outcome and reports
// whether the prediction was correct. The counter is updated in place.
func (b *branchPredictor) predict(pc uint64, taken bool) bool {
	i := (pc >> 2) & b.mask
	ctr := b.table[i]
	predicted := ctr >= 2
	if taken && ctr < 3 {
		b.table[i] = ctr + 1
	} else if !taken && ctr > 0 {
		b.table[i] = ctr - 1
	}
	return predicted == taken
}

func (b *branchPredictor) reset() {
	for i := range b.table {
		b.table[i] = 1
	}
}
