package hwsim

import "fmt"

// NativeEvent is one event a PMU register can be programmed to count,
// as exposed by a platform's native counter interface. Signals is the
// set of internal signals the event fires on (composite events, such as
// POWER3's floating-point unit event that includes rounding
// instructions, carry several bits). CounterMask restricts the physical
// counters able to count the event: bit i set means physical counter i
// can host it.
type NativeEvent struct {
	Code        uint32
	Name        string
	Desc        string
	Signals     SignalMask
	CounterMask uint32
}

// Arch describes one simulated architecture: its pipeline costs, memory
// hierarchy, PMU geometry, the cost (in cycles, charged to the running
// program) of each native counter-interface operation, and its native
// event table. These cost knobs are how the paper's per-platform access
// mechanisms (register-level ops on the T3E, a kernel patch on
// Linux/x86, vendor libraries on AIX, DADD sampling on Tru64) are
// modelled.
type Arch struct {
	Name     string // e.g. "Intel P6"
	Platform string // PAPI platform key, e.g. "linux-x86"
	ClockMHz int

	// PMU geometry.
	NumCounters  int
	CounterWidth uint // bits per physical counter (values wrap)

	// Pipeline model.
	Latency           [NumOps]uint32
	L1MissPenalty     uint32
	L2MissPenalty     uint32
	TLBMissPenalty    uint32
	MispredictPenalty uint32
	OutOfOrder        bool
	SkidMin, SkidMax  int // PC skid, in instructions, of overflow interrupts

	// Memory hierarchy.
	L1D, L1I, L2     CacheConfig
	TLBEntries       int
	PageBytes        int
	PredictorEntries int

	// Native counter-interface access costs, in cycles.
	StartCost     uint64
	StopCost      uint64
	ReadCost      uint64
	ResetCost     uint64
	InterruptCost uint64 // per overflow interrupt delivered
	SwitchCost    uint64 // reprogramming counters (multiplex slice switch)
	TimerCost     uint64 // reading the platform's cheapest timer

	// Hardware sampling engine (Alpha ProfileMe / Itanium EAR style).
	HWSampling       bool
	SampleBufEntries int    // samples buffered in hardware before a drain interrupt
	SampleDrainCost  uint64 // cycles per drain interrupt

	HasFMA bool

	Events []NativeEvent
	// Groups, when non-nil, lists the allowed co-scheduling groups of
	// native event codes (AIX/POWER-style): every event counted
	// simultaneously must belong to a single group.
	Groups [][]uint32
}

// Validate checks internal consistency of the architecture definition.
func (a *Arch) Validate() error {
	if a.Name == "" || a.Platform == "" {
		return fmt.Errorf("hwsim: arch missing name/platform")
	}
	if a.NumCounters <= 0 || a.NumCounters > 32 {
		return fmt.Errorf("hwsim: %s: NumCounters %d out of range", a.Platform, a.NumCounters)
	}
	if a.CounterWidth < 16 || a.CounterWidth > 64 {
		return fmt.Errorf("hwsim: %s: CounterWidth %d out of range", a.Platform, a.CounterWidth)
	}
	if !a.L1D.Valid() || !a.L1I.Valid() || !a.L2.Valid() {
		return fmt.Errorf("hwsim: %s: invalid cache geometry", a.Platform)
	}
	if a.TLBEntries <= 0 || a.PageBytes <= 0 {
		return fmt.Errorf("hwsim: %s: invalid TLB geometry", a.Platform)
	}
	if a.SkidMin < 0 || a.SkidMax < a.SkidMin {
		return fmt.Errorf("hwsim: %s: invalid skid range [%d,%d]", a.Platform, a.SkidMin, a.SkidMax)
	}
	if a.HWSampling && a.SampleBufEntries <= 0 {
		return fmt.Errorf("hwsim: %s: HWSampling requires SampleBufEntries > 0", a.Platform)
	}
	allCtrs := uint32(1)<<a.NumCounters - 1
	seen := make(map[uint32]bool, len(a.Events))
	names := make(map[string]bool, len(a.Events))
	for _, ev := range a.Events {
		if seen[ev.Code] {
			return fmt.Errorf("hwsim: %s: duplicate native event code %#x", a.Platform, ev.Code)
		}
		seen[ev.Code] = true
		if names[ev.Name] {
			return fmt.Errorf("hwsim: %s: duplicate native event name %q", a.Platform, ev.Name)
		}
		names[ev.Name] = true
		if ev.Signals == 0 {
			return fmt.Errorf("hwsim: %s: native event %s has empty signal mask", a.Platform, ev.Name)
		}
		if ev.CounterMask == 0 || ev.CounterMask&^allCtrs != 0 {
			return fmt.Errorf("hwsim: %s: native event %s counter mask %#x invalid for %d counters",
				a.Platform, ev.Name, ev.CounterMask, a.NumCounters)
		}
	}
	for gi, g := range a.Groups {
		if len(g) == 0 {
			return fmt.Errorf("hwsim: %s: empty event group %d", a.Platform, gi)
		}
		for _, code := range g {
			if !seen[code] {
				return fmt.Errorf("hwsim: %s: group %d references unknown event %#x", a.Platform, gi, code)
			}
		}
	}
	for op := Op(0); op < NumOps; op++ {
		if a.Latency[op] == 0 {
			return fmt.Errorf("hwsim: %s: zero latency for op %s", a.Platform, op)
		}
	}
	return nil
}

// EventByCode returns the native event with the given code.
func (a *Arch) EventByCode(code uint32) (*NativeEvent, bool) {
	for i := range a.Events {
		if a.Events[i].Code == code {
			return &a.Events[i], true
		}
	}
	return nil, false
}

// EventByName returns the native event with the given name.
func (a *Arch) EventByName(name string) (*NativeEvent, bool) {
	for i := range a.Events {
		if a.Events[i].Name == name {
			return &a.Events[i], true
		}
	}
	return nil, false
}

// CounterMaskAll returns the mask covering all physical counters.
func (a *Arch) CounterMaskAll() uint32 { return uint32(1)<<a.NumCounters - 1 }
