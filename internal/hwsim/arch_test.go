package hwsim

import "testing"

func TestBuiltinArchitecturesValidate(t *testing.T) {
	archs := Architectures()
	if len(archs) != 8 {
		t.Fatalf("expected 8 built-in architectures (the paper's platform list), got %d", len(archs))
	}
	for _, a := range archs {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Platform, err)
		}
	}
}

func TestArchByPlatform(t *testing.T) {
	for _, key := range Platforms() {
		a, ok := ArchByPlatform(key)
		if !ok || a.Platform != key {
			t.Errorf("ArchByPlatform(%q) failed", key)
		}
	}
	if _, ok := ArchByPlatform("windows-nt"); ok {
		t.Error("unexpected platform found")
	}
}

func TestEventLookups(t *testing.T) {
	a, _ := ArchByPlatform(PlatformLinuxX86)
	ev, ok := a.EventByName("FLOPS")
	if !ok {
		t.Fatal("FLOPS not found on linux-x86")
	}
	if ev.CounterMask != 0b01 {
		t.Errorf("FLOPS counter mask = %#b, want 0b01 (counter-0-only P6 quirk)", ev.CounterMask)
	}
	ev2, ok := a.EventByCode(ev.Code)
	if !ok || ev2.Name != "FLOPS" {
		t.Error("EventByCode round-trip failed")
	}
	if _, ok := a.EventByName("NO_SUCH_EVENT"); ok {
		t.Error("unexpected event found")
	}
}

func TestEveryArchCoversCoreSignals(t *testing.T) {
	// Every platform must expose at least cycles and instructions; the
	// PAPI timers and TOT_INS/TOT_CYC presets depend on them.
	needed := []Signal{SigCycles, SigInstrs}
	for _, a := range Architectures() {
		for _, want := range needed {
			found := false
			for _, ev := range a.Events {
				if ev.Signals.Has(want) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: no native event raises %v", a.Platform, want)
			}
		}
	}
}

func TestGroupsReferenceValidEvents(t *testing.T) {
	a, _ := ArchByPlatform(PlatformAIXPower3)
	if len(a.Groups) == 0 {
		t.Fatal("POWER3 must define event groups")
	}
	for gi, g := range a.Groups {
		if len(g) > a.NumCounters {
			t.Errorf("group %d has %d events but only %d counters", gi, len(g), a.NumCounters)
		}
	}
}

func TestValidateRejectsBadArch(t *testing.T) {
	good := archLinuxX86()
	bad := *good
	bad.NumCounters = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero counters")
	}
	bad = *good
	bad.SkidMin, bad.SkidMax = 5, 2
	if err := bad.Validate(); err == nil {
		t.Error("expected error for inverted skid range")
	}
	bad = *good
	bad.Events = append([]NativeEvent{}, good.Events...)
	bad.Events = append(bad.Events, NativeEvent{Code: bad.Events[0].Code, Name: "dup", Signals: 1, CounterMask: 1})
	if err := bad.Validate(); err == nil {
		t.Error("expected error for duplicate event code")
	}
}

func TestSignalMaskOps(t *testing.T) {
	m := Mask(SigFPAdd, SigFMA)
	if !m.Has(SigFPAdd) || !m.Has(SigFMA) || m.Has(SigLoads) {
		t.Error("mask membership wrong")
	}
	sigs := m.Signals()
	if len(sigs) != 2 || sigs[0] != SigFPAdd || sigs[1] != SigFMA {
		t.Errorf("Signals() = %v", sigs)
	}
	if m.String() != "FP_ADD+FMA" {
		t.Errorf("String() = %q", m.String())
	}
	if SignalMask(0).String() != "NONE" {
		t.Error("empty mask string")
	}
}
