package hwsim

// Op classifies a simulated instruction. The classification is the only
// semantic level the performance-counter model needs: it determines the
// base latency, which signals fire and how the memory system is probed.
type Op uint8

// Instruction classes understood by the simulated cores.
const (
	OpNop Op = iota
	OpInt
	OpLoad
	OpStore
	OpFPAdd
	OpFPMul
	OpFPDiv
	OpFMA     // fused multiply-add: one instruction, two FLOPs
	OpFPRound // precision conversion / rounding (frsp-style)
	OpBranch

	NumOps // sentinel: number of instruction classes
)

var opNames = [NumOps]string{
	OpNop:     "nop",
	OpInt:     "int",
	OpLoad:    "load",
	OpStore:   "store",
	OpFPAdd:   "fpadd",
	OpFPMul:   "fpmul",
	OpFPDiv:   "fpdiv",
	OpFMA:     "fma",
	OpFPRound: "fpround",
	OpBranch:  "branch",
}

// String returns the mnemonic for the instruction class.
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return "op?"
}

// IsFP reports whether the class is a floating-point arithmetic
// instruction (including FMA and rounding/conversion instructions).
func (o Op) IsFP() bool {
	switch o {
	case OpFPAdd, OpFPMul, OpFPDiv, OpFMA, OpFPRound:
		return true
	}
	return false
}

// Instr is one simulated instruction. Addr is the text (program counter)
// address; Mem is the effective address for loads and stores; Taken
// marks whether a branch is taken.
type Instr struct {
	Op    Op
	Addr  uint64
	Mem   uint64
	Taken bool
}

// InstrBytes is the fixed encoding size of a simulated instruction;
// consecutive instructions in a basic block are InstrBytes apart.
const InstrBytes = 4
