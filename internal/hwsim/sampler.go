package hwsim

// Sample is one hardware-sampled in-flight instruction, in the style of
// Alpha's ProfileMe or Itanium's event address registers: the hardware
// picks an instruction at random, tags it, and records exactly which
// events it incurred together with its precise address. There is no
// skid: PC attribution is exact.
type Sample struct {
	PC      uint64
	Op      Op
	Signals SignalMask // signals this instruction fired
	Cost    uint32     // cycles the instruction took (incl. stalls)
}

// DrainHandler receives batches of hardware samples when the in-hardware
// sample buffer fills (or is explicitly flushed). The slice is reused by
// the sampler after the call returns; handlers must copy what they keep.
type DrainHandler func(batch []Sample)

// sampler is the in-core hardware sampling engine. Sampling cost is the
// occasional buffer-drain interrupt, not a per-event interrupt — this is
// what makes DCPI-style profiling an order of magnitude cheaper than
// overflow-interrupt profiling.
type sampler struct {
	enabled   bool
	period    int // mean instructions between samples
	countdown int
	buf       []Sample
	handler   DrainHandler
	rng       *rng
	taken     uint64 // total samples taken since Configure
}

func newSampler(r *rng) *sampler { return &sampler{rng: r} }

// configure arms the sampler with a mean period (instructions between
// samples) and a hardware buffer capacity.
func (s *sampler) configure(period, bufEntries int, h DrainHandler) {
	s.enabled = period > 0
	s.period = period
	s.buf = make([]Sample, 0, bufEntries)
	s.handler = h
	s.taken = 0
	s.reload()
}

func (s *sampler) disable() { s.enabled = false }

// reload draws the next inter-sample gap: uniform in [period/2,
// 3*period/2) so the mean is exactly period but no workload periodicity
// can alias against the sampling clock.
func (s *sampler) reload() {
	if s.period <= 1 {
		s.countdown = 1
		return
	}
	half := s.period / 2
	s.countdown = half + s.rng.intn(s.period)
	if s.countdown <= 0 {
		s.countdown = 1
	}
}

// step advances the sampler by one retired instruction and reports
// whether the hardware buffer filled (the core must then deliver a
// drain interrupt via drain). The instruction's exact PC, class, fired
// signals and cost are recorded if this instruction is the sampled one.
func (s *sampler) step(pc uint64, op Op, sigs SignalMask, cost uint32) bool {
	if !s.enabled {
		return false
	}
	s.countdown--
	if s.countdown > 0 {
		return false
	}
	s.reload()
	s.taken++
	s.buf = append(s.buf, Sample{PC: pc, Op: op, Signals: sigs, Cost: cost})
	return len(s.buf) == cap(s.buf)
}

// drain hands the buffered samples to the handler and empties the
// buffer. Returns the number of samples drained.
func (s *sampler) drain() int {
	n := len(s.buf)
	if n == 0 {
		return 0
	}
	if s.handler != nil {
		s.handler(s.buf)
	}
	s.buf = s.buf[:0]
	return n
}
