package hwsim

// rng is a small, allocation-free splitmix64 generator. The simulator
// cannot use math/rand's global state: determinism across runs and
// across architectures requires every stochastic choice (skid length,
// sample jitter) to come from a seeded per-core source.
type rng struct{ state uint64 }

func newRNG(seed uint64) rng { return rng{state: seed ^ 0x9e3779b97f4a7c15} }

// next returns the next 64-bit value in the sequence.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniformly distributed value in [0, n). n must be > 0.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}
