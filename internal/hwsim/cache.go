package hwsim

// CacheConfig describes the geometry of one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line size (power of two)
	Ways      int // associativity (1 = direct mapped)
}

// Valid reports whether the geometry is internally consistent.
func (c CacheConfig) Valid() bool {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return false
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return false
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	return sets > 0 && sets&(sets-1) == 0
}

// cache is a set-associative cache with true-LRU replacement. Tags are
// full line addresses biased by one, so the zero tag unambiguously
// means "empty way" even when address 0 is accessed.
type cache struct {
	lineShift uint
	setMask   uint64
	ways      int
	tags      []uint64 // sets × ways
	age       []uint32 // LRU stamps, parallel to tags
	clock     uint32

	accesses uint64
	misses   uint64
}

func newCache(cfg CacheConfig) *cache {
	if !cfg.Valid() {
		panic("hwsim: invalid cache config")
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &cache{
		lineShift: shift,
		setMask:   uint64(sets - 1),
		ways:      cfg.Ways,
		tags:      make([]uint64, sets*cfg.Ways),
		age:       make([]uint32, sets*cfg.Ways),
	}
}

// access probes the cache with a byte address and returns true on hit.
// On miss the line is filled, evicting the LRU way.
func (c *cache) access(addr uint64) bool {
	line := addr>>c.lineShift + 1 // +1: zero stays the empty-way marker
	set := int(line&c.setMask) * c.ways
	c.clock++
	c.accesses++
	lru, lruAge := set, c.age[set]
	for w := 0; w < c.ways; w++ {
		i := set + w
		if c.tags[i] == line {
			c.age[i] = c.clock
			return true
		}
		if c.age[i] < lruAge {
			lru, lruAge = i, c.age[i]
		}
	}
	c.misses++
	c.tags[lru] = line
	c.age[lru] = c.clock
	return false
}

// reset empties the cache and zeroes its statistics.
func (c *cache) reset() {
	clear(c.tags)
	clear(c.age)
	c.clock, c.accesses, c.misses = 0, 0, 0
}

// tlb is a fully-associative translation buffer with LRU replacement.
type tlb struct {
	pageShift uint
	entries   []uint64
	age       []uint32
	clock     uint32
}

func newTLB(entries int, pageBytes int) *tlb {
	if entries <= 0 || pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("hwsim: invalid TLB config")
	}
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	return &tlb{pageShift: shift, entries: make([]uint64, entries), age: make([]uint32, entries)}
}

// access probes the TLB with a byte address and returns true on hit.
func (t *tlb) access(addr uint64) bool {
	page := addr>>t.pageShift + 1 // +1 so page 0 is distinguishable from empty
	t.clock++
	lru, lruAge := 0, t.age[0]
	for i, e := range t.entries {
		if e == page {
			t.age[i] = t.clock
			return true
		}
		if t.age[i] < lruAge {
			lru, lruAge = i, t.age[i]
		}
	}
	t.entries[lru] = page
	t.age[lru] = t.clock
	return false
}

func (t *tlb) reset() {
	clear(t.entries)
	clear(t.age)
	t.clock = 0
}
