package hwsim

import "testing"

func TestOpMetadata(t *testing.T) {
	if OpFMA.String() != "fma" || OpBranch.String() != "branch" {
		t.Error("op names")
	}
	if Op(200).String() != "op?" {
		t.Error("unknown op name")
	}
	for _, op := range []Op{OpFPAdd, OpFPMul, OpFPDiv, OpFMA, OpFPRound} {
		if !op.IsFP() {
			t.Errorf("%v should be FP", op)
		}
	}
	for _, op := range []Op{OpInt, OpLoad, OpStore, OpBranch, OpNop} {
		if op.IsFP() {
			t.Errorf("%v should not be FP", op)
		}
	}
	if Signal(250).String() != "SIG_UNKNOWN" {
		t.Error("unknown signal name")
	}
}

func TestSkidWithinConfiguredBounds(t *testing.T) {
	// Property of the skid model: on the P6 (skid 4..12) the reported
	// PC is always 4..12 instructions after the overflowing one.
	a, _ := ArchByPlatform(PlatformLinuxX86)
	c := MustNewCPU(a, 77)
	fl, _ := a.EventByName("FLOPS")
	if err := c.PMU().Program(map[int]NativeEvent{0: *fl}); err != nil {
		t.Fatal(err)
	}
	// A long straight run so skidded PCs stay inside the block.
	const n = 40_000
	instrs := make([]Instr, n)
	for i := range instrs {
		op := OpInt
		if i%8 == 0 {
			op = OpFPAdd
		}
		instrs[i] = Instr{Op: op, Addr: 0x400000 + uint64(i)*InstrBytes}
	}
	var violations, fires int
	c.PMU().SetHandler(func(pc uint64, reg int) {
		fires++
		idx := int(pc-0x400000) / InstrBytes
		// The event instruction is the nearest FP instruction at least
		// SkidMin back; distance to it must be within [SkidMin, SkidMax].
		lo, hi := false, false
		for d := a.SkidMin; d <= a.SkidMax; d++ {
			j := idx - d
			if j >= 0 && instrs[j].Op == OpFPAdd {
				lo = true
			}
			hi = true
		}
		if !(lo && hi) {
			violations++
		}
	})
	c.PMU().SetOverflow(0, 500)
	c.PMU().Start()
	c.Run(&SliceStream{Instrs: instrs})
	if fires == 0 {
		t.Fatal("no overflows")
	}
	if violations != 0 {
		t.Errorf("%d/%d interrupts outside the configured skid window", violations, fires)
	}
}

func TestSamplesTakenAndReset(t *testing.T) {
	a, _ := ArchByPlatform(PlatformTru64Alpha)
	c := MustNewCPU(a, 78)
	if err := c.ConfigureSampling(100, func([]Sample) {}); err != nil {
		t.Fatal(err)
	}
	instrs := make([]Instr, 10_000)
	for i := range instrs {
		instrs[i] = Instr{Op: OpInt, Addr: 0x400000}
	}
	c.Run(&SliceStream{Instrs: instrs})
	taken := c.SamplesTaken()
	if taken < 80 || taken > 120 {
		t.Errorf("samples taken = %d, want ~100", taken)
	}
	c.DisableSampling()
	c.Run(&SliceStream{Instrs: instrs})
	if c.SamplesTaken() != taken {
		t.Error("sampler still taking samples after disable")
	}
}

func TestResetMemorySystem(t *testing.T) {
	a, _ := ArchByPlatform(PlatformLinuxX86)
	c := MustNewCPU(a, 79)
	warm := []Instr{{Op: OpLoad, Addr: 0x400000, Mem: 0x5000000}}
	c.Run(&SliceStream{Instrs: warm})
	m0 := c.Truth(SigL1DMiss)
	// Warm: second access hits.
	c.Run(&SliceStream{Instrs: warm})
	if c.Truth(SigL1DMiss) != m0 {
		t.Fatal("warm access missed")
	}
	// After reset: cold again.
	c.ResetMemorySystem()
	c.Run(&SliceStream{Instrs: warm})
	if c.Truth(SigL1DMiss) != m0+1 {
		t.Error("reset did not cool the cache")
	}
}

func TestNewCPURejectsInvalidArch(t *testing.T) {
	bad := *archLinuxX86()
	bad.TLBEntries = 0
	if _, err := NewCPU(&bad, 1); err == nil {
		t.Error("invalid arch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewCPU did not panic")
		}
	}()
	MustNewCPU(&bad, 1)
}
