package hwsim

import "fmt"

// Stream supplies instructions to a CPU. Next fills buf and returns the
// number filled; returning 0 ends the stream. Implementations generate
// instructions lazily so arbitrarily long programs run in constant
// memory.
type Stream interface {
	Next(buf []Instr) int
}

// SliceStream adapts a fixed instruction slice into a Stream.
type SliceStream struct {
	Instrs []Instr
	pos    int
}

// Next implements Stream.
func (s *SliceStream) Next(buf []Instr) int {
	n := copy(buf, s.Instrs[s.pos:])
	s.pos += n
	return n
}

// pendingOvf is an overflow interrupt in flight: on out-of-order cores
// the interrupt is delivered `skid` retired instructions after the
// event, and the PC reported is whatever instruction is retiring then.
type pendingOvf struct {
	reg  int
	skid int
}

// CPU is one simulated core: pipeline cost model, private memory
// hierarchy, branch predictor, PMU and optional hardware sampler. It is
// not safe for concurrent use; the machine-independent layer gives each
// simulated thread its own CPU, mirroring per-thread counter contexts.
type CPU struct {
	arch *Arch
	pmu  *PMU
	smp  *sampler

	l1d, l1i, l2 *cache
	dtlb         *tlb
	bp           *branchPredictor
	rng          rng

	cycles  uint64 // virtual (process) cycles
	stolen  uint64 // cycles consumed by simulated competing processes
	retired uint64
	truth   [NumSignals]uint64 // ground-truth signal totals, always counted

	pending []pendingOvf

	timerInterval uint64
	timerNext     uint64
	timerFn       func()
	timerFiring   bool

	stealQuantum uint64
	stealAmount  uint64
	nextSteal    uint64
}

// NewCPU builds a core for the given architecture. The seed drives every
// stochastic choice (skid, sampling jitter) so runs are reproducible.
func NewCPU(a *Arch, seed uint64) (*CPU, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	c := &CPU{
		arch: a,
		l1d:  newCache(a.L1D),
		l1i:  newCache(a.L1I),
		l2:   newCache(a.L2),
		dtlb: newTLB(a.TLBEntries, a.PageBytes),
		bp:   newBranchPredictor(a.PredictorEntries),
		rng:  newRNG(seed),
	}
	c.pmu = newPMU(a)
	c.smp = newSampler(&c.rng)
	return c, nil
}

// MustNewCPU is NewCPU that panics on an invalid architecture; intended
// for the package's own built-in architecture table.
func MustNewCPU(a *Arch, seed uint64) *CPU {
	c, err := NewCPU(a, seed)
	if err != nil {
		panic(err)
	}
	return c
}

// Arch returns the architecture this core implements.
func (c *CPU) Arch() *Arch { return c.arch }

// PMU returns the core's performance monitoring unit.
func (c *CPU) PMU() *PMU { return c.pmu }

// Cycles returns the virtual cycles consumed by the simulated process.
func (c *CPU) Cycles() uint64 { return c.cycles }

// RealCycles returns wall-clock cycles: process cycles plus cycles
// stolen by competing processes (see SetInterference).
func (c *CPU) RealCycles() uint64 { return c.cycles + c.stolen }

// Retired returns the number of retired instructions.
func (c *CPU) Retired() uint64 { return c.retired }

// Truth returns the ground-truth total of a signal since construction.
// It exists for calibration and tests; real hardware has no such oracle.
func (c *CPU) Truth(s Signal) uint64 { return c.truth[s] }

// SetTimer installs a periodic cycle timer: fn runs every interval
// cycles of process time. interval 0 removes the timer. The multiplexing
// layer uses this as its time-slicing interrupt.
func (c *CPU) SetTimer(interval uint64, fn func()) {
	c.timerInterval = interval
	c.timerFn = fn
	if interval > 0 {
		c.timerNext = c.cycles + interval
	}
}

// SetInterference simulates a multi-user machine: every quantum cycles
// of process progress, steal cycles of wall-clock time go to other
// processes. Virtual time excludes them; real time includes them.
func (c *CPU) SetInterference(quantum, steal uint64) {
	c.stealQuantum = quantum
	c.stealAmount = steal
	if quantum > 0 {
		c.nextSteal = c.cycles + quantum
	}
}

// ConfigureSampling arms the hardware sampling engine (ProfileMe/EAR
// style) with a mean period in instructions. Returns an error on
// architectures without hardware sampling support.
func (c *CPU) ConfigureSampling(period int, h DrainHandler) error {
	if !c.arch.HWSampling {
		return fmt.Errorf("hwsim: %s has no hardware sampling support", c.arch.Platform)
	}
	if period <= 0 {
		return fmt.Errorf("hwsim: sampling period must be positive")
	}
	c.smp.configure(period, c.arch.SampleBufEntries, h)
	return nil
}

// DisableSampling stops the sampling engine, flushing buffered samples.
func (c *CPU) DisableSampling() {
	c.smp.drain()
	c.smp.disable()
}

// FlushSamples drains any buffered samples to the handler immediately,
// charging the drain interrupt cost. Returns the samples drained.
func (c *CPU) FlushSamples() int {
	n := c.smp.drain()
	if n > 0 {
		c.advanceMode(c.arch.SampleDrainCost, DomainKernel)
	}
	return n
}

// SamplesTaken returns the number of hardware samples taken since the
// sampler was configured.
func (c *CPU) SamplesTaken() uint64 { return c.smp.taken }

// ResetMemorySystem empties caches, TLB and branch predictor state, so
// experiments can start from a cold machine.
func (c *CPU) ResetMemorySystem() {
	c.l1d.reset()
	c.l1i.reset()
	c.l2.reset()
	c.dtlb.reset()
	c.bp.reset()
}

// Charge consumes library-overhead work on this core: the given number
// of cycles and instructions are executed on behalf of the measurement
// infrastructure itself. Like real hardware, running counters observe
// this perturbation.
func (c *CPU) Charge(cycles, instrs uint64) {
	if instrs > 0 {
		c.truth[SigInstrs] += instrs
		c.truth[SigIntOps] += instrs
		if c.pmu.running {
			c.pmu.add(SigInstrs, instrs, DomainKernel)
			c.pmu.add(SigIntOps, instrs, DomainKernel)
		}
		c.retired += instrs
	}
	c.advanceMode(cycles, DomainKernel)
}

// advance moves user-mode time forward (see advanceMode).
func (c *CPU) advance(n uint64) { c.advanceMode(n, DomainUser) }

// advanceMode moves time forward by n cycles in the given execution
// mode, raising SigCycles and firing the periodic timer / interference
// model as thresholds pass.
func (c *CPU) advanceMode(n uint64, mode Domain) {
	if n == 0 {
		return
	}
	c.cycles += n
	c.truth[SigCycles] += n
	if c.pmu.running {
		c.pmu.add(SigCycles, n, mode)
	}
	if c.stealQuantum > 0 {
		for c.cycles >= c.nextSteal {
			c.stolen += c.stealAmount
			c.nextSteal += c.stealQuantum
		}
	}
	// The firing guard prevents re-entry: a tick handler that charges
	// cycles (reading counters costs time) must not recursively fire
	// the next tick from inside its own Charge.
	if c.timerFn != nil && c.timerInterval > 0 && !c.timerFiring {
		c.timerFiring = true
		for c.cycles >= c.timerNext {
			c.timerNext += c.timerInterval
			c.timerFn()
		}
		c.timerFiring = false
	}
}

// Run executes the stream to completion.
func (c *CPU) Run(s Stream) {
	var buf [256]Instr
	for {
		n := s.Next(buf[:])
		if n == 0 {
			return
		}
		c.ExecSlice(buf[:n])
	}
}

// ExecSlice executes the instructions in order.
func (c *CPU) ExecSlice(instrs []Instr) {
	for i := range instrs {
		c.exec(&instrs[i])
	}
}

// exec retires one instruction: costs, memory system, signals, PMU,
// overflow skid, sampling.
func (c *CPU) exec(in *Instr) {
	a := c.arch
	cost := a.Latency[in.Op]
	var sigs SignalMask
	var ovf uint32

	// Instruction fetch through the I-cache.
	if !c.l1i.access(in.Addr) {
		sigs |= 1 << SigL1IMiss
		cost += a.L1MissPenalty
		sigs |= 1 << SigL2Access
		if !c.l2.access(in.Addr) {
			sigs |= 1 << SigL2Miss
			cost += a.L2MissPenalty
		}
	}

	sigs |= 1 << SigInstrs
	switch in.Op {
	case OpInt, OpNop:
		sigs |= 1 << SigIntOps
	case OpLoad:
		sigs |= 1 << SigLoads
		cost += c.dataAccess(in.Mem, &sigs)
	case OpStore:
		sigs |= 1 << SigStores
		cost += c.dataAccess(in.Mem, &sigs)
	case OpFPAdd:
		sigs |= 1 << SigFPAdd
	case OpFPMul:
		sigs |= 1 << SigFPMul
	case OpFPDiv:
		sigs |= 1 << SigFPDiv
	case OpFMA:
		sigs |= 1 << SigFMA
	case OpFPRound:
		sigs |= 1 << SigFPRound
	case OpBranch:
		sigs |= 1 << SigBranch
		if in.Taken {
			sigs |= 1 << SigBranchTaken
		}
		if !c.bp.predict(in.Addr, in.Taken) {
			sigs |= 1 << SigBranchMiss
			cost += a.MispredictPenalty
		}
	}

	stall := uint64(cost - a.Latency[in.Op])

	// Raise all per-instruction signals on truth counters and the PMU.
	running := c.pmu.running
	for s := Signal(0); s < NumSignals; s++ {
		if sigs&(1<<s) == 0 {
			continue
		}
		c.truth[s]++
		if running {
			ovf |= c.pmu.add(s, 1, DomainUser)
		}
	}
	if stall > 0 {
		c.truth[SigStallCycles] += stall
		if running {
			ovf |= c.pmu.add(SigStallCycles, stall, DomainUser)
		}
		sigs |= 1 << SigStallCycles
	}

	c.retired++
	c.advance(uint64(cost))

	// Overflow interrupts: immediate on in-order cores, skidded on OOO.
	if ovf != 0 {
		for r := 0; r < len(c.pmu.regs); r++ {
			if ovf&(1<<uint(r)) == 0 {
				continue
			}
			skid := a.SkidMin
			if a.SkidMax > a.SkidMin {
				skid += c.rng.intn(a.SkidMax - a.SkidMin + 1)
			}
			if skid == 0 {
				c.deliverOverflow(in.Addr, r)
			} else {
				c.pending = append(c.pending, pendingOvf{reg: r, skid: skid})
			}
		}
	}
	if len(c.pending) > 0 {
		kept := c.pending[:0]
		for _, p := range c.pending {
			p.skid--
			if p.skid <= 0 {
				c.deliverOverflow(in.Addr, p.reg)
			} else {
				kept = append(kept, p)
			}
		}
		c.pending = kept
	}

	// Hardware sampling engine.
	if c.smp.enabled && c.smp.step(in.Addr, in.Op, sigs, cost) {
		c.advanceMode(a.SampleDrainCost, DomainKernel)
		c.smp.drain()
	}
}

// dataAccess runs a load/store address through DTLB, L1D and L2,
// returning the added stall cycles and accumulating miss signals.
func (c *CPU) dataAccess(addr uint64, sigs *SignalMask) uint32 {
	a := c.arch
	var extra uint32
	if !c.dtlb.access(addr) {
		*sigs |= 1 << SigTLBDMiss
		extra += a.TLBMissPenalty
	}
	*sigs |= 1 << SigL1DAccess
	if !c.l1d.access(addr) {
		*sigs |= 1 << SigL1DMiss
		extra += a.L1MissPenalty
		*sigs |= 1 << SigL2Access
		if !c.l2.access(addr) {
			*sigs |= 1 << SigL2Miss
			extra += a.L2MissPenalty
		}
	}
	return extra
}

// deliverOverflow charges the interrupt cost (kernel mode) and invokes
// the handler.
func (c *CPU) deliverOverflow(pc uint64, reg int) {
	c.advanceMode(c.arch.InterruptCost, DomainKernel)
	if h := c.pmu.handler; h != nil {
		h(pc, reg)
	}
}
