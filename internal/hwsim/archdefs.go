package hwsim

// This file defines the seven simulated architectures, mirroring the
// platforms the paper's reference implementation supported. The tables
// are modelled on the real machines' documented quirks:
//
//   - Intel P6 (Linux/x86): 2 counters, FLOPS countable only on
//     counter 0, kernel-patch access costs, deep OOO interrupt skid.
//   - IBM POWER3 (AIX, pmtoolkit): 8 counters but group-constrained
//     event scheduling; the FPU-completion event includes rounding/
//     conversion instructions (the paper's §4 discrepancy); has FMA.
//   - Alpha EV67 (Tru64, DADD/DCPI): ProfileMe hardware sampling with
//     exact PC attribution and very low drain cost; severe skid when
//     using plain overflow interrupts instead.
//   - Itanium 2 (Linux/IA-64): 4 counters, event address registers
//     (EARs) for exact sampling; FMA counted as one instruction.
//   - Cray T3E (Alpha EV5): register-level counter access — reads cost
//     almost nothing; in-order, zero skid; only 3 counters with very
//     restrictive placement.
//   - UltraSPARC II (Solaris): 2 counters with strict PIC0/PIC1 event
//     split.
//   - MIPS R10000 (IRIX): 2 counters; most "graduated" events live on
//     counter 1 only, so even two-event sets frequently conflict.
//
// The absolute numbers are calibrated only to preserve the paper's
// qualitative shapes (who wins, by roughly what factor); they are not
// microarchitectural ground truth.

// Platform keys for the built-in architectures.
const (
	PlatformLinuxX86   = "linux-x86"
	PlatformAIXPower3  = "aix-power3"
	PlatformTru64Alpha = "tru64-alpha"
	PlatformLinuxIA64  = "linux-ia64"
	PlatformCrayT3E    = "cray-t3e"
	PlatformSolaris    = "solaris-sparc"
	PlatformIRIXMips   = "irix-mips"
	PlatformWindows    = "windows-x86"
)

// NativeCodeBase is or'ed into native event codes, mirroring PAPI's
// convention that native codes have the high bit set.
const NativeCodeBase uint32 = 0x40000000

func defaultLatencies() [NumOps]uint32 {
	var l [NumOps]uint32
	l[OpNop] = 1
	l[OpInt] = 1
	l[OpLoad] = 2
	l[OpStore] = 1
	l[OpFPAdd] = 3
	l[OpFPMul] = 4
	l[OpFPDiv] = 22
	l[OpFMA] = 4
	l[OpFPRound] = 3
	l[OpBranch] = 1
	return l
}

// evList builds a native event table, assigning codes sequentially.
type evList struct{ events []NativeEvent }

func (l *evList) add(name, desc string, sigs SignalMask, ctrMask uint32) uint32 {
	code := NativeCodeBase | uint32(len(l.events))
	l.events = append(l.events, NativeEvent{
		Code: code, Name: name, Desc: desc, Signals: sigs, CounterMask: ctrMask,
	})
	return code
}

func archLinuxX86() *Arch {
	var l evList
	const both = 0b11
	l.add("CPU_CLK_UNHALTED", "cycles the CPU is not halted", Mask(SigCycles), both)
	l.add("INST_RETIRED", "instructions retired", Mask(SigInstrs), both)
	// The real P6 restriction: FLOPS is only available on counter 0.
	l.add("FLOPS", "FP operations retired (x87 pipe)", Mask(SigFPAdd, SigFPMul, SigFPDiv), 0b01)
	l.add("FP_ASSIST", "FP rounding/conversion assists", Mask(SigFPRound), 0b01)
	l.add("DATA_MEM_REFS", "all loads and stores", Mask(SigLoads, SigStores), both)
	l.add("DCU_LINES_IN", "L1 data cache lines allocated (misses)", Mask(SigL1DMiss), both)
	l.add("ICACHE_MISSES", "instruction fetch misses", Mask(SigL1IMiss), both)
	l.add("L2_RQSTS", "L2 cache requests", Mask(SigL2Access), both)
	l.add("L2_LINES_IN", "L2 lines allocated (misses)", Mask(SigL2Miss), both)
	l.add("DTLB_MISSES", "data TLB misses", Mask(SigTLBDMiss), both)
	l.add("BR_INST_RETIRED", "branches retired", Mask(SigBranch), both)
	l.add("BR_TAKEN_RETIRED", "taken branches retired", Mask(SigBranchTaken), both)
	l.add("BR_MISS_PRED_RETIRED", "mispredicted branches retired", Mask(SigBranchMiss), both)
	l.add("RESOURCE_STALLS", "cycles stalled on resources", Mask(SigStallCycles), both)

	return &Arch{
		Name:     "Intel P6 (Pentium III)",
		Platform: PlatformLinuxX86,
		ClockMHz: 600,

		NumCounters:  2,
		CounterWidth: 40,

		Latency:           defaultLatencies(),
		L1MissPenalty:     8,
		L2MissPenalty:     70,
		TLBMissPenalty:    30,
		MispredictPenalty: 10,
		OutOfOrder:        true,
		SkidMin:           4,
		SkidMax:           12,

		L1D:              CacheConfig{SizeBytes: 16 << 10, LineBytes: 32, Ways: 4},
		L1I:              CacheConfig{SizeBytes: 16 << 10, LineBytes: 32, Ways: 4},
		L2:               CacheConfig{SizeBytes: 256 << 10, LineBytes: 32, Ways: 8},
		TLBEntries:       64,
		PageBytes:        4 << 10,
		PredictorEntries: 1024,

		// Kernel-patch (perfctr-style) access: each operation is a
		// system call.
		StartCost:     4000,
		StopCost:      4000,
		ReadCost:      2500,
		ResetCost:     2500,
		InterruptCost: 6000,
		SwitchCost:    5000,
		TimerCost:     32,

		Events: l.events,
	}
}

func archAIXPower3() *Arch {
	var l evList
	const all8 = 0xff
	cyc := l.add("PM_CYC", "processor cycles", Mask(SigCycles), all8)
	ins := l.add("PM_INST_CMPL", "instructions completed", Mask(SigInstrs), all8)
	fadd := l.add("PM_FPU_FADD", "FP add/subtract executed", Mask(SigFPAdd), 0x11)
	fmul := l.add("PM_FPU_FMUL", "FP multiply executed", Mask(SigFPMul), 0x22)
	fdiv := l.add("PM_FPU_FDIV", "FP divide executed", Mask(SigFPDiv), 0x44)
	fma := l.add("PM_FPU_FMA", "FP multiply-add executed", Mask(SigFMA), 0x88)
	frsp := l.add("PM_FPU_FRSP_FCONV", "FP round-to-single/convert executed", Mask(SigFPRound), 0x44)
	// The paper's POWER3 discrepancy: the FPU-completion event counts
	// rounding/conversion instructions as floating-point instructions.
	fpu := l.add("PM_FPU_CMPL", "FP instructions completed (incl. frsp/fconv)",
		Mask(SigFPAdd, SigFPMul, SigFPDiv, SigFMA, SigFPRound), 0x10)
	ld := l.add("PM_LD_CMPL", "loads completed", Mask(SigLoads), 0x0f)
	st := l.add("PM_ST_CMPL", "stores completed", Mask(SigStores), 0xf0)
	lsu := l.add("PM_LSU_CMPL", "load/store unit completions", Mask(SigLoads, SigStores), 0x3c)
	dcm := l.add("PM_DC_MISS", "L1 data cache misses", Mask(SigL1DMiss), 0x0f)
	dca := l.add("PM_DC_ACCESS", "L1 data cache accesses", Mask(SigL1DAccess), 0xf0)
	icm := l.add("PM_IC_MISS", "instruction cache misses", Mask(SigL1IMiss), all8)
	l2m := l.add("PM_L2_MISS", "L2 cache misses", Mask(SigL2Miss), 0x3c)
	l2r := l.add("PM_L2_REF", "L2 cache references", Mask(SigL2Access), 0xc3)
	tlb := l.add("PM_DTLB_MISS", "data TLB misses", Mask(SigTLBDMiss), all8)
	br := l.add("PM_BR_CMPL", "branches completed", Mask(SigBranch), 0x0f)
	mpr := l.add("PM_BR_MPRED", "branches mispredicted", Mask(SigBranchMiss), 0xf0)
	tkn := l.add("PM_BR_TAKEN", "taken branches", Mask(SigBranchTaken), 0x3c)
	stl := l.add("PM_STALL_CYC", "stall cycles", Mask(SigStallCycles), all8)

	return &Arch{
		Name:     "IBM POWER3",
		Platform: PlatformAIXPower3,
		ClockMHz: 375,

		NumCounters:  8,
		CounterWidth: 32,

		Latency:           defaultLatencies(),
		L1MissPenalty:     9,
		L2MissPenalty:     60,
		TLBMissPenalty:    40,
		MispredictPenalty: 6,
		OutOfOrder:        true,
		SkidMin:           1,
		SkidMax:           3,

		L1D:              CacheConfig{SizeBytes: 64 << 10, LineBytes: 128, Ways: 8}, // 64 sets
		L1I:              CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Ways: 4},
		L2:               CacheConfig{SizeBytes: 1 << 20, LineBytes: 128, Ways: 4},
		TLBEntries:       128,
		PageBytes:        4 << 10,
		PredictorEntries: 2048,

		// pmtoolkit vendor-library access.
		StartCost:     1500,
		StopCost:      1500,
		ReadCost:      900,
		ResetCost:     900,
		InterruptCost: 5000,
		SwitchCost:    3000,
		TimerCost:     55,

		HasFMA: true,
		Events: l.events,
		// AIX manages events in groups: a running set of events must be
		// satisfiable within a single group.
		Groups: [][]uint32{
			{cyc, ins, fpu, fma, ld, st, br, dcm},        // general
			{cyc, ins, fadd, fmul, fdiv, fma, frsp, fpu}, // FPU detail
			{cyc, ins, ld, st, dcm, dca, l2m, tlb},       // memory
			{cyc, ins, br, mpr, tkn, icm, stl, lsu},      // branch/front-end
			{cyc, ins, l2r, l2m, icm, dcm, dca, tlb},     // cache hierarchy
			{cyc, ins, stl, fpu, dcm, mpr, ld, st},       // stall analysis
		},
	}
}

func archTru64Alpha() *Arch {
	var l evList
	const both = 0b11
	l.add("CYCLES", "machine cycles", Mask(SigCycles), both)
	l.add("RET_INST", "retired instructions", Mask(SigInstrs), both)
	l.add("RET_FLOPS", "retired FP operations", Mask(SigFPAdd, SigFPMul, SigFPDiv), both)
	l.add("RET_LOADS", "retired loads", Mask(SigLoads), both)
	l.add("RET_STORES", "retired stores", Mask(SigStores), both)
	l.add("DC_ACCESS", "D-cache accesses", Mask(SigL1DAccess), both)
	l.add("DC_MISS", "D-cache misses", Mask(SigL1DMiss), both)
	l.add("IC_MISS", "I-cache misses", Mask(SigL1IMiss), both)
	l.add("BC_REF", "board-level (L2) cache references", Mask(SigL2Access), both)
	l.add("BC_MISS", "board-level (L2) cache misses", Mask(SigL2Miss), both)
	l.add("DTB_MISS", "data translation buffer misses", Mask(SigTLBDMiss), both)
	l.add("RET_BRANCHES", "retired branches", Mask(SigBranch), both)
	l.add("RET_BR_TAKEN", "retired taken branches", Mask(SigBranchTaken), both)
	l.add("RET_BR_MISPRED", "retired mispredicted branches", Mask(SigBranchMiss), both)
	l.add("REPLAY_TRAP", "stall cycles (replay traps)", Mask(SigStallCycles), both)

	return &Arch{
		Name:     "HP/Compaq Alpha EV67",
		Platform: PlatformTru64Alpha,
		ClockMHz: 667,

		NumCounters:  2,
		CounterWidth: 32,

		Latency:           defaultLatencies(),
		L1MissPenalty:     10,
		L2MissPenalty:     80,
		TLBMissPenalty:    40,
		MispredictPenalty: 12,
		OutOfOrder:        true,
		// Plain overflow interrupts on the EV67 skid badly; DCPI
		// exists precisely because of this.
		SkidMin: 6,
		SkidMax: 20,

		L1D:              CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Ways: 2},
		L1I:              CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Ways: 2},
		L2:               CacheConfig{SizeBytes: 2 << 20, LineBytes: 64, Ways: 1},
		TLBEntries:       128,
		PageBytes:        8 << 10,
		PredictorEntries: 4096,

		StartCost:     2000,
		StopCost:      2000,
		ReadCost:      1500,
		ResetCost:     1500,
		InterruptCost: 7000,
		SwitchCost:    4000,
		TimerCost:     28,

		// ProfileMe via DADD: exact-PC hardware sampling, amortized
		// drain interrupts. drain/(buf*period) keeps overhead ~1-2%.
		HWSampling:       true,
		SampleBufEntries: 256,
		SampleDrainCost:  2400,

		Events: l.events,
	}
}

func archLinuxIA64() *Arch {
	var l evList
	const all4 = 0b1111
	l.add("CPU_CYCLES", "CPU cycles", Mask(SigCycles), all4)
	l.add("IA64_INST_RETIRED", "retired instructions", Mask(SigInstrs), all4)
	l.add("FP_OPS_RETIRED", "retired FP instructions (FMA counts once)",
		Mask(SigFPAdd, SigFPMul, SigFPDiv, SigFMA), 0b1100)
	l.add("FP_FMA_RETIRED", "retired fused multiply-adds", Mask(SigFMA), 0b1100)
	l.add("LOADS_RETIRED", "retired loads", Mask(SigLoads), 0b0011)
	l.add("STORES_RETIRED", "retired stores", Mask(SigStores), 0b0011)
	l.add("L1D_READS", "L1D accesses", Mask(SigL1DAccess), 0b0011)
	l.add("L1D_READ_MISSES", "L1D misses", Mask(SigL1DMiss), 0b0011)
	l.add("L1I_MISSES", "L1I misses", Mask(SigL1IMiss), all4)
	l.add("L2_REFERENCES", "L2 references", Mask(SigL2Access), all4)
	l.add("L2_MISSES", "L2 misses", Mask(SigL2Miss), all4)
	l.add("DTLB_MISSES", "data TLB misses", Mask(SigTLBDMiss), 0b0011)
	l.add("BRANCH_EVENT", "branch instructions", Mask(SigBranch), all4)
	l.add("BR_TAKEN", "taken branches", Mask(SigBranchTaken), all4)
	l.add("BR_MISPRED_DETAIL", "mispredicted branches", Mask(SigBranchMiss), all4)
	l.add("BACK_END_BUBBLE", "back-end stall cycles", Mask(SigStallCycles), all4)

	return &Arch{
		Name:     "Intel Itanium 2",
		Platform: PlatformLinuxIA64,
		ClockMHz: 900,

		NumCounters:  4,
		CounterWidth: 47,

		Latency:           defaultLatencies(),
		L1MissPenalty:     7,
		L2MissPenalty:     55,
		TLBMissPenalty:    25,
		MispredictPenalty: 6,
		OutOfOrder:        false, // in-order EPIC; EARs give exact addresses
		SkidMin:           0,
		SkidMax:           1,

		L1D:              CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		L1I:              CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		L2:               CacheConfig{SizeBytes: 256 << 10, LineBytes: 128, Ways: 8},
		TLBEntries:       128,
		PageBytes:        16 << 10,
		PredictorEntries: 2048,

		StartCost:     3000,
		StopCost:      3000,
		ReadCost:      2000,
		ResetCost:     2000,
		InterruptCost: 5500,
		SwitchCost:    4500,
		TimerCost:     36,

		// Event address registers: exact-address sampling.
		HWSampling:       true,
		SampleBufEntries: 128,
		SampleDrainCost:  2500,

		HasFMA: true,
		Events: l.events,
	}
}

func archCrayT3E() *Arch {
	var l evList
	l.add("CYCLES", "machine cycles", Mask(SigCycles), 0b001)
	l.add("INST_ISSUED", "instructions issued", Mask(SigInstrs), 0b011)
	l.add("FP_INST", "floating-point instructions", Mask(SigFPAdd, SigFPMul, SigFPDiv), 0b010)
	l.add("LOADS", "load instructions", Mask(SigLoads), 0b100)
	l.add("STORES", "store instructions", Mask(SigStores), 0b100)
	l.add("DCACHE_ACCESS", "D-cache accesses", Mask(SigL1DAccess), 0b010)
	l.add("DCACHE_MISS", "D-cache misses", Mask(SigL1DMiss), 0b110)
	l.add("ICACHE_MISS", "I-cache misses", Mask(SigL1IMiss), 0b010)
	l.add("SCACHE_ACCESS", "secondary cache accesses", Mask(SigL2Access), 0b100)
	l.add("SCACHE_MISS", "secondary cache misses", Mask(SigL2Miss), 0b100)
	l.add("DTB_MISS", "data translation buffer misses", Mask(SigTLBDMiss), 0b100)
	l.add("BRANCHES", "branch instructions", Mask(SigBranch), 0b010)
	l.add("BR_TAKEN", "taken branches", Mask(SigBranchTaken), 0b100)
	l.add("BR_MISPRED", "mispredicted branches", Mask(SigBranchMiss), 0b100)
	l.add("STALL_CYCLES", "pipeline stall cycles", Mask(SigStallCycles), 0b110)

	return &Arch{
		Name:     "Cray T3E (Alpha EV5)",
		Platform: PlatformCrayT3E,
		ClockMHz: 450,

		NumCounters:  3,
		CounterWidth: 48,

		Latency:           defaultLatencies(),
		L1MissPenalty:     12,
		L2MissPenalty:     90,
		TLBMissPenalty:    50,
		MispredictPenalty: 5,
		OutOfOrder:        false, // in-order EV5: precise interrupts
		SkidMin:           0,
		SkidMax:           0,

		L1D:              CacheConfig{SizeBytes: 8 << 10, LineBytes: 32, Ways: 1},
		L1I:              CacheConfig{SizeBytes: 8 << 10, LineBytes: 32, Ways: 1},
		L2:               CacheConfig{SizeBytes: 96 << 10, LineBytes: 64, Ways: 3},
		TLBEntries:       64,
		PageBytes:        8 << 10,
		PredictorEntries: 512,

		// Register-level counter access: almost free.
		StartCost:     40,
		StopCost:      40,
		ReadCost:      12,
		ResetCost:     12,
		InterruptCost: 4000,
		SwitchCost:    200,
		TimerCost:     6,

		Events: l.events,
	}
}

func archSolarisSparc() *Arch {
	var l evList
	const both = 0b11
	l.add("Cycle_cnt", "cycles", Mask(SigCycles), both)
	l.add("Instr_cnt", "instructions completed", Mask(SigInstrs), both)
	l.add("FA_pipe_completion", "FP adder pipe completions", Mask(SigFPAdd), 0b01)
	l.add("FM_pipe_completion", "FP multiplier pipe completions", Mask(SigFPMul), 0b10)
	l.add("FPU_cmpl", "all FP completions", Mask(SigFPAdd, SigFPMul, SigFPDiv), 0b10)
	l.add("LD_cnt", "load instructions", Mask(SigLoads), 0b01)
	l.add("ST_cnt", "store instructions", Mask(SigStores), 0b10)
	l.add("DC_rd", "D-cache read accesses", Mask(SigL1DAccess), 0b01)
	l.add("DC_rd_miss", "D-cache read misses", Mask(SigL1DMiss), 0b10)
	l.add("IC_miss", "I-cache misses", Mask(SigL1IMiss), 0b10)
	l.add("EC_ref", "external (L2) cache references", Mask(SigL2Access), 0b01)
	l.add("EC_misses", "external (L2) cache misses", Mask(SigL2Miss), 0b10)
	l.add("DTLB_miss", "data TLB misses", Mask(SigTLBDMiss), 0b01)
	l.add("Br_completed", "branches completed", Mask(SigBranch), 0b01)
	l.add("Br_taken", "taken branches", Mask(SigBranchTaken), 0b01)
	l.add("Br_mispred", "mispredicted branches", Mask(SigBranchMiss), 0b10)
	l.add("Load_use_stall", "stall cycles", Mask(SigStallCycles), 0b10)

	return &Arch{
		Name:     "Sun UltraSPARC II",
		Platform: PlatformSolaris,
		ClockMHz: 400,

		NumCounters:  2,
		CounterWidth: 32,

		Latency:           defaultLatencies(),
		L1MissPenalty:     9,
		L2MissPenalty:     75,
		TLBMissPenalty:    35,
		MispredictPenalty: 4,
		OutOfOrder:        false,
		SkidMin:           1,
		SkidMax:           4,

		L1D:              CacheConfig{SizeBytes: 16 << 10, LineBytes: 32, Ways: 1},
		L1I:              CacheConfig{SizeBytes: 16 << 10, LineBytes: 32, Ways: 2},
		L2:               CacheConfig{SizeBytes: 512 << 10, LineBytes: 64, Ways: 1},
		TLBEntries:       64,
		PageBytes:        8 << 10,
		PredictorEntries: 1024,

		StartCost:     2000,
		StopCost:      2000,
		ReadCost:      1200,
		ResetCost:     1200,
		InterruptCost: 6000,
		SwitchCost:    3500,
		TimerCost:     40,

		Events: l.events,
	}
}

func archIRIXMips() *Arch {
	var l evList
	// The R10000 splits its event space: decode-side events count only
	// on counter 0, graduated-side events only on counter 1.
	const c0, c1, both = 0b01, 0b10, 0b11
	l.add("Cycles", "cycles", Mask(SigCycles), both)
	l.add("Instr_issued", "instructions issued", Mask(SigInstrs), c0)
	l.add("Instr_graduated", "instructions graduated", Mask(SigInstrs), c1)
	l.add("FP_graduated", "FP instructions graduated", Mask(SigFPAdd, SigFPMul, SigFPDiv), c1)
	l.add("Loads_issued", "loads issued", Mask(SigLoads), c0)
	l.add("Stores_issued", "stores issued", Mask(SigStores), c0)
	l.add("Loads_graduated", "loads graduated", Mask(SigLoads), c1)
	l.add("Stores_graduated", "stores graduated", Mask(SigStores), c1)
	l.add("DC_access", "primary D-cache accesses", Mask(SigL1DAccess), c0)
	l.add("DC_miss", "primary D-cache misses", Mask(SigL1DMiss), c1)
	l.add("IC_miss", "primary I-cache misses", Mask(SigL1IMiss), c0)
	l.add("SC_access", "secondary cache accesses", Mask(SigL2Access), c0)
	l.add("SC_miss", "secondary cache misses", Mask(SigL2Miss), c1)
	l.add("TLB_miss", "TLB misses", Mask(SigTLBDMiss), c1)
	l.add("Br_decoded", "branches decoded", Mask(SigBranch), c0)
	l.add("Br_mispred", "mispredicted branches", Mask(SigBranchMiss), c1)

	return &Arch{
		Name:     "MIPS R10000",
		Platform: PlatformIRIXMips,
		ClockMHz: 250,

		NumCounters:  2,
		CounterWidth: 32,

		Latency:           defaultLatencies(),
		L1MissPenalty:     10,
		L2MissPenalty:     65,
		TLBMissPenalty:    45,
		MispredictPenalty: 8,
		OutOfOrder:        true,
		SkidMin:           3,
		SkidMax:           10,

		L1D:              CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Ways: 2},
		L1I:              CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 2},
		L2:               CacheConfig{SizeBytes: 1 << 20, LineBytes: 128, Ways: 2},
		TLBEntries:       64,
		PageBytes:        16 << 10,
		PredictorEntries: 512,

		StartCost:     2500,
		StopCost:      2500,
		ReadCost:      1800,
		ResetCost:     1800,
		InterruptCost: 6500,
		SwitchCost:    4000,
		TimerCost:     48,

		Events: l.events,
	}
}

// archWindowsX86 is the same P6 silicon as linux-x86 behind a very
// different access path: the Windows PMC kernel driver's IOCTLs cost
// more than the Linux kernel-patch syscalls, and the interrupt path is
// heavier still. Completing the paper's platform list (§1 names eight
// platforms, Windows among them) with one table shows what "only the
// substrate is machine-dependent" buys.
func archWindowsX86() *Arch {
	a := *archLinuxX86()
	a.Platform = PlatformWindows
	a.Name = "Intel P6 (Windows NT, PMC driver)"
	a.StartCost = 6000
	a.StopCost = 6000
	a.ReadCost = 3500
	a.ResetCost = 3500
	a.InterruptCost = 8000
	a.SwitchCost = 7000
	a.TimerCost = 120 // QueryPerformanceCounter
	return &a
}

var builtins = []*Arch{
	archLinuxX86(),
	archAIXPower3(),
	archTru64Alpha(),
	archLinuxIA64(),
	archCrayT3E(),
	archSolarisSparc(),
	archIRIXMips(),
	archWindowsX86(),
}

// Architectures returns the built-in architecture models. The returned
// slice and its Archs must not be mutated.
func Architectures() []*Arch { return builtins }

// ArchByPlatform looks up a built-in architecture by platform key
// (e.g. "linux-x86").
func ArchByPlatform(platform string) (*Arch, bool) {
	for _, a := range builtins {
		if a.Platform == platform {
			return a, true
		}
	}
	return nil, false
}

// Platforms returns the platform keys of all built-in architectures, in
// registry order.
func Platforms() []string {
	keys := make([]string, len(builtins))
	for i, a := range builtins {
		keys[i] = a.Platform
	}
	return keys
}
