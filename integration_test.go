package repro

import (
	"testing"
	"testing/quick"

	"repro/papi"
	"repro/tools/dynaprof"
	"repro/tools/tau"
	"repro/workload"
)

// Cross-stack integration tests: drive the full pipeline (workload →
// simulated hardware → substrate → portable layer → public API → tools)
// and assert the pieces agree with each other.

// TestFullPipelineEveryPlatform runs a known kernel on all seven
// platforms with counting, timers and the high-level API together, and
// checks the independent views agree.
func TestFullPipelineEveryPlatform(t *testing.T) {
	for _, platform := range papi.Platforms() {
		t.Run(platform, func(t *testing.T) {
			sys := papi.MustInit(papi.Options{Platform: platform})
			th := sys.Main()
			prog := workload.Dot(workload.DotConfig{N: 30_000})
			want := int64(prog.Expected().FPInstrs())

			es := th.NewEventSet()
			if err := es.AddAll(papi.FP_INS, papi.TOT_CYC); err != nil {
				t.Fatal(err)
			}
			v0 := th.VirtCyc()
			if err := es.Start(); err != nil {
				t.Fatal(err)
			}
			th.Run(prog)
			vals := make([]int64, 2)
			if err := es.Stop(vals); err != nil {
				t.Fatal(err)
			}
			v1 := th.VirtCyc()

			// FP counts: exact on direct substrates, ≤3% on sampling.
			rel := float64(vals[0]-want) / float64(want)
			if rel < 0 {
				rel = -rel
			}
			if sys.Info().HWSampling && sys.Info().Platform == papi.PlatformTru64Alpha {
				if rel > 0.03 {
					t.Errorf("FP_INS estimate %d vs %d (%.2f%%)", vals[0], want, rel*100)
				}
			} else if vals[0] != want {
				t.Errorf("FP_INS = %d, want %d", vals[0], want)
			}
			// TOT_CYC must agree with the virtual timer's view of the
			// same window, within the timer/charge costs around it —
			// loosely on the sampling substrate, whose cycle value is
			// an estimate from a few hundred samples on this short run.
			window := int64(v1 - v0)
			tol := 0.05
			if sys.Info().Platform == papi.PlatformTru64Alpha {
				tol = 0.25
			}
			if vals[1] <= 0 {
				t.Fatalf("TOT_CYC = %d", vals[1])
			}
			diff := float64(window - vals[1])
			if diff < 0 {
				diff = -diff
			}
			if diff/float64(window) > tol {
				t.Errorf("counter window %d differs from timer window %d by >%.0f%%", vals[1], window, tol*100)
			}
		})
	}
}

// TestToolsAgreeOnHotFunction profiles the same program with dynaprof
// and tau and checks both identify the same dominant function with
// consistent FP totals.
func TestToolsAgreeOnHotFunction(t *testing.T) {
	build := func() *dynaprof.Executable {
		exe, err := dynaprof.NewExecutable("app", "main",
			&dynaprof.Func{Name: "main", Body: []dynaprof.Stmt{
				dynaprof.CallStmt{Callee: "hot"},
				dynaprof.CallStmt{Callee: "cold"},
			}},
			&dynaprof.Func{Name: "hot", Body: []dynaprof.Stmt{
				dynaprof.RunStmt{Prog: workload.MatMul(workload.MatMulConfig{N: 24})},
			}},
			&dynaprof.Func{Name: "cold", Body: []dynaprof.Stmt{
				dynaprof.RunStmt{Prog: workload.Triad(workload.TriadConfig{N: 256})},
			}},
		)
		if err != nil {
			t.Fatal(err)
		}
		return exe
	}

	// dynaprof view.
	sys1 := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
	prof1 := dynaprof.Attach(build())
	probe, err := dynaprof.NewPAPIProbe(sys1.Main(), papi.FP_INS)
	if err != nil {
		t.Fatal(err)
	}
	if err := prof1.Instrument("*", probe); err != nil {
		t.Fatal(err)
	}
	if err := prof1.Run(sys1.Main()); err != nil {
		t.Fatal(err)
	}
	probe.Close()
	dynaHot := map[string]int64{}
	for _, st := range probe.Stats() {
		dynaHot[st.Name] = st.Exclusive
	}

	// tau view (manual instrumentation around the same workloads).
	sys2 := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
	tprof, err := tau.New(sys2, tau.Config{Metrics: []papi.Event{papi.FP_INS}})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := tprof.Thread(sys2.Main())
	if err != nil {
		t.Fatal(err)
	}
	tp.Start("hot")
	sys2.Main().Run(workload.MatMul(workload.MatMulConfig{N: 24}))
	tp.Stop("hot")
	tp.Start("cold")
	sys2.Main().Run(workload.Triad(workload.TriadConfig{N: 256}))
	tp.Stop("cold")
	tprof.Close()
	tauHot := map[string]int64{}
	for _, st := range tp.Stats() {
		tauHot[st.Region] = st.Excl[0]
	}

	// Both tools measured the same deterministic kernels: totals match.
	if dynaHot["hot"] != tauHot["hot"] {
		t.Errorf("dynaprof hot=%d, tau hot=%d", dynaHot["hot"], tauHot["hot"])
	}
	if dynaHot["cold"] != tauHot["cold"] {
		t.Errorf("dynaprof cold=%d, tau cold=%d", dynaHot["cold"], tauHot["cold"])
	}
	if dynaHot["hot"] <= dynaHot["cold"] {
		t.Error("hot function should dominate")
	}
}

// TestExactCountingProperty: on the zero-skid T3E substrate, FP_INS
// equals the analytic FP count of any randomly shaped workload.
func TestExactCountingProperty(t *testing.T) {
	f := func(n8 uint8, fma bool) bool {
		n := int(n8%24) + 2
		sys := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
		th := sys.Main()
		prog := workload.MatMul(workload.MatMulConfig{N: n, UseFMA: fma})
		es := th.NewEventSet()
		if err := es.AddAll(papi.FP_OPS); err != nil {
			return false
		}
		if err := es.Start(); err != nil {
			return false
		}
		th.Run(prog)
		vals := make([]int64, 1)
		if err := es.Stop(vals); err != nil {
			return false
		}
		return vals[0] == int64(prog.Expected().FLOPs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDerivedEventLinearityProperty: the value of a derived preset
// equals the weighted sum of its natives measured separately, for any
// deterministic workload (the derived-event machinery adds nothing).
func TestDerivedEventLinearityProperty(t *testing.T) {
	f := func(n16 uint16) bool {
		n := int(n16%4000) + 500
		prog := workload.MixedPrecision(workload.MixedPrecisionConfig{N: n})

		measure := func(evs ...papi.Event) []int64 {
			sys := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
			th := sys.Main()
			es := th.NewEventSet()
			if err := es.AddAll(evs...); err != nil {
				return nil
			}
			prog.Reset()
			if err := es.Start(); err != nil {
				return nil
			}
			th.Run(prog)
			vals := make([]int64, len(evs))
			if err := es.Stop(vals); err != nil {
				return nil
			}
			return vals
		}
		sys := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
		cmpl, ok1 := sys.NativeByName("PM_FPU_CMPL")
		frsp, ok2 := sys.NativeByName("PM_FPU_FRSP_FCONV")
		fma, ok3 := sys.NativeByName("PM_FPU_FMA")
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		derived := measure(papi.FP_OPS)
		parts := measure(cmpl, frsp, fma)
		if derived == nil || parts == nil {
			return false
		}
		// FP_OPS = CMPL - FRSP + FMA on POWER3.
		return derived[0] == parts[0]-parts[1]+parts[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicEndToEnd: the same options and program produce
// byte-identical measurements, the property every experiment rests on.
func TestDeterministicEndToEnd(t *testing.T) {
	run := func() []int64 {
		sys := papi.MustInit(papi.Options{Platform: papi.PlatformTru64Alpha, Seed: 99})
		th := sys.Main()
		es := th.NewEventSet()
		es.AddAll(papi.FP_INS, papi.TOT_CYC, papi.L1_DCM)
		es.Start()
		th.Run(workload.Stencil(workload.StencilConfig{N: 64, Sweeps: 2}))
		vals := make([]int64, 3)
		es.Stop(vals)
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a, b)
		}
	}
}
