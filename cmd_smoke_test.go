package repro

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// Smoke tests for the command-line tools: run each binary the way a
// user would and check for the headline content. These go through `go
// run`, so they exercise flag parsing and output formatting end to end.

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCmdPapiAvail(t *testing.T) {
	out := runCmd(t, "./cmd/papi-avail", "-platform", "irix-mips", "-native")
	for _, want := range []string{"MIPS R10000", "PAPI_TOT_INS", "Instr_graduated", "NATIVE EVENT"} {
		if !strings.Contains(out, want) {
			t.Errorf("papi-avail output missing %q:\n%s", want, out)
		}
	}
	// R10K cannot map every preset.
	if !strings.Contains(out, "of 19 presets available") || strings.Contains(out, "19 of 19") {
		t.Errorf("R10K availability line wrong:\n%s", out)
	}
}

func TestCmdPapirun(t *testing.T) {
	out := runCmd(t, "./cmd/papirun", "-platform", "aix-power3", "-workload", "dot", "-n", "64", "-events", "PAPI_FP_OPS,PAPI_TOT_CYC")
	if !strings.Contains(out, "PAPI_FP_OPS") || !strings.Contains(out, "virtual time") {
		t.Errorf("papirun output:\n%s", out)
	}
	// dot n=64 → N=4096 elements → 8192 FLOPs.
	if !strings.Contains(out, "8192") {
		t.Errorf("papirun FP_OPS should be 8192:\n%s", out)
	}
}

func TestCmdExperimentsSingle(t *testing.T) {
	out := runCmd(t, "./cmd/experiments", "-e", "e10")
	if !strings.Contains(out, "papi_cost") || !strings.Contains(out, "cray-t3e") {
		t.Errorf("experiments -e e10 output:\n%s", out)
	}
}

func TestCmdDynaprofList(t *testing.T) {
	out := runCmd(t, "./cmd/dynaprof", "-list")
	for _, fn := range []string{"main", "solve_step", "smooth"} {
		if !strings.Contains(out, fn) {
			t.Errorf("dynaprof -list missing %s:\n%s", fn, out)
		}
	}
}

func TestCmdPapiprof(t *testing.T) {
	out := runCmd(t, "./cmd/papiprof", "-metrics", "PAPI_FP_INS", "-workload", "dot", "-n", "64", "-top", "3")
	if !strings.Contains(out, "PAPI_FP_INS") || !strings.Contains(out, "dot.c:") {
		t.Errorf("papiprof output:\n%s", out)
	}
}

func TestCmdMpirun(t *testing.T) {
	out := runCmd(t, "./cmd/mpirun", "-np", "2", "-n", "24")
	if !strings.Contains(out, "ring exchange") || !strings.Contains(out, "FLOP rate by activity") {
		t.Errorf("mpirun output:\n%s", out)
	}
}

func TestCmdPerfometerTrace(t *testing.T) {
	out := runCmd(t, "./cmd/perfometer", "-platform", "linux-ia64", "-width", "40")
	if !strings.Contains(out, "peak rate") || !strings.Contains(out, "sections") {
		t.Errorf("perfometer output:\n%s", out)
	}
}

// TestCmdPerfometerHistory runs perfometer's -papid history mode
// against a live in-process papid: a ticking session accumulates
// history, then the CLI queries and renders it.
func TestCmdPerfometerHistory(t *testing.T) {
	srv := server.New(server.Config{TickInterval: 5 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	cl, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	created, err := cl.Do(wire.Request{Op: wire.OpCreate,
		Events: []string{"PAPI_TOT_CYC"}, Workload: "dot", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: created.Session}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := srv.Stats(); st.TSDB.Samples >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("history never accumulated")
		}
		time.Sleep(10 * time.Millisecond)
	}

	out := runCmd(t, "./cmd/perfometer", "-papid", addr.String(),
		"-session", "1", "-last", "1m", "-step", "1s", "-width", "30")
	for _, want := range []string{"perfometer history", "PAPI_TOT_CYC", "windows", "last total"} {
		if !strings.Contains(out, want) {
			t.Errorf("history output missing %q:\n%s", want, out)
		}
	}
}
